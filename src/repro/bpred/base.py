"""Direction-predictor interface and shared helpers.

Direction predictors answer one question — will this conditional branch
be taken? — and are updated with the resolved outcome in program order.
All the classic SimpleScalar predictor families implement this
interface, so the ReSim fetch stage and the trace generator can use any
of them interchangeably.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass


@dataclass(frozen=True)
class Prediction:
    """Outcome of one branch-predictor consultation.

    Attributes
    ----------
    taken:
        Predicted direction (always True for unconditional control flow).
    target:
        Predicted target address, or ``None`` when no target source
        (BTB, RAS) could supply one.  A taken prediction without a
        target cannot redirect fetch.
    """

    taken: bool
    target: int | None = None


def saturating_update(counter: int, taken: bool, maximum: int = 3) -> int:
    """Advance a saturating counter (default 2-bit) toward the outcome."""
    if taken:
        return min(counter + 1, maximum)
    return max(counter - 1, 0)


def counter_predicts_taken(counter: int, maximum: int = 3) -> bool:
    """A counter in the upper half of its range predicts taken."""
    return counter > maximum // 2


class DirectionPredictor(abc.ABC):
    """Predicts conditional-branch directions.

    Implementations must be *deterministic state machines*: given the
    same sequence of ``predict``/``update`` calls they must produce the
    same answers.  The trace-driven consistency invariant (generator and
    ReSim agreeing on every prediction) depends on it.
    """

    @abc.abstractmethod
    def predict(self, pc: int) -> bool:
        """Predicted direction for the conditional branch at ``pc``."""

    @abc.abstractmethod
    def update(self, pc: int, taken: bool) -> None:
        """Train with the resolved outcome (called in program order)."""

    def reset(self) -> None:
        """Restore power-on state; subclasses with state must override."""

    @property
    def name(self) -> str:
        """Short identifier used in reports and generated VHDL."""
        return type(self).__name__
