"""The composite branch predictor unit (direction + BTB + RAS).

This is the component both trace generation and the ReSim fetch stage
share.  Exact agreement between the two is the central trace-driven
invariant (wrong-path blocks in the trace must be precisely the paths
ReSim's own predictor follows), and it holds because:

* ``predict`` performs no architectural state change (the RAS is
  *peeked*, not popped);
* all training — direction counters, BTB fill, RAS push/pop — happens
  in ``update``, which both sides call once per branch in program
  order (ReSim does so at Commit, per Section III of the paper);
* wrong-path (tagged) records never consult or train the unit.

Misprediction taxonomy (Section III of the paper):

* **misprediction** — wrong *direction* on a conditional branch;
  ReSim fetches the tagged wrong-path block until the branch resolves
  at Commit, then pays the mis-speculation penalty.
* **misfetch** — direction fine but the predicted *target* is wrong
  (BTB miss/alias, RAS mismatch) on a taken control-flow instruction;
  fetch pays the (3-cycle default) misfetch penalty and continues.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bpred.base import DirectionPredictor, Prediction
from repro.bpred.bimodal import BimodalPredictor
from repro.bpred.btb import BranchTargetBuffer
from repro.bpred.combining import CombiningPredictor
from repro.bpred.perfect import PerfectPredictor
from repro.bpred.ras import ReturnAddressStack
from repro.bpred.static_ import AlwaysNotTaken, AlwaysTaken
from repro.bpred.twolevel import TwoLevelPredictor
from repro.isa.instruction import INSTRUCTION_BYTES
from repro.isa.opcodes import BranchKind
from repro.utils.registry import Registry


@dataclass(frozen=True)
class PredictorConfig:
    """Full parameter set for one branch predictor instance.

    The same object parameterizes the Python model, the area estimator
    (:mod:`repro.fpga.area`) and the VHDL generator
    (:mod:`repro.fpga.vhdlgen`) — mirroring the paper's "script to
    produce VHDL code for the desired Branch Predictor according to the
    user parameters".

    The defaults are the paper's evaluation configuration: two-level
    with BHT=4, history length 8, PHT=4096; direct-mapped 512-entry
    BTB; 16-entry RAS.
    """

    scheme: str = "twolevel"  # twolevel|gshare|bimodal|comb|taken|nottaken|perfect
    l1_size: int = 4
    history_length: int = 8
    l2_size: int = 4096
    bimodal_size: int = 2048
    meta_size: int = 1024
    btb_entries: int = 512
    btb_assoc: int = 1
    ras_depth: int = 16

    @property
    def is_perfect(self) -> bool:
        return self.scheme == "perfect"

    def describe(self) -> str:
        if self.is_perfect:
            return "perfect BP"
        return (
            f"{self.scheme} BP, BTB {self.btb_entries}x{self.btb_assoc}, "
            f"RAS {self.ras_depth}"
        )


#: The exact configuration used in Section V.C of the paper.
PAPER_PREDICTOR = PredictorConfig()

#: Perfect prediction, used for the FAST comparison (Table 1, right).
PERFECT_PREDICTOR = PredictorConfig(scheme="perfect")

#: Direction-predictor scheme registry: scheme name → builder taking a
#: :class:`PredictorConfig`.  New schemes register here and are
#: immediately usable wherever schemes are named (sweep axes, session
#: specs, the ``--predictor`` CLI flag).
PREDICTORS: Registry = Registry("predictor scheme")


@PREDICTORS.register("twolevel")
def _build_twolevel(config: PredictorConfig) -> DirectionPredictor:
    return TwoLevelPredictor(
        l1_size=config.l1_size,
        history_length=config.history_length,
        l2_size=config.l2_size,
    )


@PREDICTORS.register("gshare")
def _build_gshare(config: PredictorConfig) -> DirectionPredictor:
    return TwoLevelPredictor(
        l1_size=1,
        history_length=config.history_length,
        l2_size=config.l2_size,
        xor=True,
    )


@PREDICTORS.register("bimodal")
def _build_bimodal(config: PredictorConfig) -> DirectionPredictor:
    return BimodalPredictor(table_size=config.bimodal_size)


@PREDICTORS.register("comb")
def _build_comb(config: PredictorConfig) -> DirectionPredictor:
    return CombiningPredictor(
        first=TwoLevelPredictor(
            l1_size=config.l1_size,
            history_length=config.history_length,
            l2_size=config.l2_size,
        ),
        second=BimodalPredictor(table_size=config.bimodal_size),
        meta_size=config.meta_size,
    )


@PREDICTORS.register("taken")
def _build_taken(config: PredictorConfig) -> DirectionPredictor:
    return AlwaysTaken()


@PREDICTORS.register("nottaken")
def _build_nottaken(config: PredictorConfig) -> DirectionPredictor:
    return AlwaysNotTaken()


@PREDICTORS.register("perfect")
def _build_perfect(config: PredictorConfig) -> DirectionPredictor:
    return PerfectPredictor()


#: The set of direction-predictor schemes
#: :func:`build_direction_predictor` accepts (kept as a tuple for
#: backward compatibility; the registry is the source of truth).
PREDICTOR_SCHEMES = PREDICTORS.names()


def build_direction_predictor(config: PredictorConfig) -> DirectionPredictor:
    """Instantiate the direction predictor a config describes.

    Raises :class:`~repro.utils.registry.RegistryError` (a
    ``ValueError``) for an unknown scheme.
    """
    return PREDICTORS.get(config.scheme)(config)


@dataclass(frozen=True)
class BranchResolution:
    """Comparison of a prediction against the traced actual outcome.

    ``fetch_redirects`` captures what the front end *actually does*: a
    taken direction prediction can only redirect fetch when a target is
    available (BTB hit / non-empty RAS).  A predicted-taken branch with
    no target therefore behaves like a not-taken prediction, which is
    how both SimpleScalar and the misprediction classification here
    treat it.
    """

    predicted_taken: bool
    predicted_target: int | None
    actual_taken: bool
    actual_target: int
    mispredicted: bool  # wrong effective direction: wrong-path + recovery
    misfetch: bool      # right direction, wrong/missing target: penalty only
    wrong_path_start: int | None = None  # fetch PC after the wrong decision

    @property
    def fetch_redirects(self) -> bool:
        return self.predicted_taken and self.predicted_target is not None


@dataclass
class PredictorStatistics:
    """Counters mirroring sim-bpred / sim-outorder branch statistics."""

    lookups: int = 0
    conditional: int = 0
    mispredictions: int = 0
    misfetches: int = 0
    btb_hits: int = 0
    btb_misses: int = 0
    ras_predictions: int = 0
    ras_correct: int = 0

    @property
    def direction_accuracy(self) -> float:
        if self.conditional == 0:
            return 1.0
        return 1.0 - self.mispredictions / self.conditional


class BranchPredictorUnit:
    """Direction predictor + BTB + RAS behind one interface."""

    def __init__(self, config: PredictorConfig = PAPER_PREDICTOR) -> None:
        self._config = config
        self._direction = build_direction_predictor(config)
        self._btb = BranchTargetBuffer(
            entries=config.btb_entries, assoc=config.btb_assoc
        )
        self._ras = ReturnAddressStack(depth=config.ras_depth)
        self.stats = PredictorStatistics()

    @property
    def config(self) -> PredictorConfig:
        return self._config

    @property
    def is_perfect(self) -> bool:
        return self._config.is_perfect

    # ------------------------------------------------------------------
    # Prediction and resolution
    # ------------------------------------------------------------------

    def resolve(
        self,
        pc: int,
        kind: BranchKind,
        actual_taken: bool,
        actual_target: int,
    ) -> BranchResolution:
        """Predict the branch at ``pc`` and classify the outcome.

        Stateless with respect to predictor training — call
        :meth:`update` separately, in program order.
        """
        self.stats.lookups += 1
        if self.is_perfect:
            return BranchResolution(
                predicted_taken=actual_taken,
                predicted_target=actual_target,
                actual_taken=actual_taken,
                actual_target=actual_target,
                mispredicted=False,
                misfetch=False,
            )

        if kind is BranchKind.COND:
            self.stats.conditional += 1
            predicted_taken = self._direction.predict(pc)
        else:
            predicted_taken = True  # jumps, calls, returns: always taken

        predicted_target: int | None
        if kind is BranchKind.RETURN:
            predicted_target = self._ras.peek()
            self.stats.ras_predictions += 1
            if predicted_target == actual_target:
                self.stats.ras_correct += 1
        else:
            predicted_target = self._btb.lookup(pc)
            if predicted_target is None:
                self.stats.btb_misses += 1
            else:
                self.stats.btb_hits += 1

        fetch_redirects = predicted_taken and predicted_target is not None
        mispredicted = False
        misfetch = False
        wrong_path_start: int | None = None
        if kind is BranchKind.COND:
            if fetch_redirects and not actual_taken:
                # Redirected down the (wrong) taken path.
                mispredicted = True
                wrong_path_start = predicted_target
            elif not fetch_redirects and actual_taken:
                # Stayed on the (wrong) sequential path — either a
                # not-taken direction or a taken prediction the BTB
                # could not serve.
                mispredicted = True
                wrong_path_start = pc + INSTRUCTION_BYTES
            elif fetch_redirects and actual_taken:
                misfetch = predicted_target != actual_target
        else:
            # Unconditional control flow is always taken; only the
            # target can be wrong (or unavailable) — a misfetch.
            misfetch = (not fetch_redirects
                        or predicted_target != actual_target)
        return BranchResolution(
            predicted_taken=predicted_taken,
            predicted_target=predicted_target,
            actual_taken=actual_taken,
            actual_target=actual_target,
            mispredicted=mispredicted,
            misfetch=misfetch,
            wrong_path_start=wrong_path_start,
        )

    def update(
        self,
        pc: int,
        kind: BranchKind,
        taken: bool,
        target: int,
        resolution: BranchResolution | None = None,
    ) -> None:
        """Train all predictor state, in program order.

        ReSim performs this at Commit ("updates the Branch Predictor in
        case of branch", Section III); the trace generator performs it
        at execution.  Both orders are architectural program order, so
        the state sequences are identical.
        """
        if self.is_perfect:
            return
        if resolution is not None and resolution.mispredicted:
            self.stats.mispredictions += 1
        if resolution is not None and resolution.misfetch:
            self.stats.misfetches += 1
        if kind is BranchKind.COND:
            self._direction.update(pc, taken)
        if taken and kind is not BranchKind.RETURN:
            self._btb.update(pc, target)
        if kind is BranchKind.CALL:
            self._ras.push(pc + INSTRUCTION_BYTES)
        elif kind is BranchKind.RETURN:
            self._ras.pop()

    def reset(self) -> None:
        self._direction.reset()
        self._btb.reset()
        self._ras.reset()
        self.stats = PredictorStatistics()

    @property
    def name(self) -> str:
        return self._direction.name
