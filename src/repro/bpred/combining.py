"""Combining (tournament) predictor — SimpleScalar's ``comb``.

A meta-predictor table of 2-bit counters chooses, per branch, between
two component predictors (classically bimodal and two-level).  Included
because ReSim's predictor generator is meant to cover the SimpleScalar
predictor menu; the paper's evaluation itself uses the plain two-level
configuration.
"""

from __future__ import annotations

from repro.bpred.base import (
    DirectionPredictor,
    counter_predicts_taken,
    saturating_update,
)
from repro.isa.instruction import INSTRUCTION_BYTES


class CombiningPredictor(DirectionPredictor):
    """Tournament of two direction predictors with a meta chooser.

    Parameters
    ----------
    first, second:
        Component predictors.  The meta table picks ``first`` when its
        counter is in the taken half.  Both components are trained on
        every update, as in SimpleScalar.
    meta_size:
        Number of 2-bit chooser counters; power of two.
    """

    def __init__(
        self,
        first: DirectionPredictor,
        second: DirectionPredictor,
        meta_size: int = 1024,
    ) -> None:
        if meta_size <= 0 or meta_size & (meta_size - 1):
            raise ValueError(f"meta_size must be a power of two, got {meta_size}")
        self._first = first
        self._second = second
        self._meta_size = meta_size
        self._meta = [2] * meta_size

    @property
    def meta_size(self) -> int:
        return self._meta_size

    @property
    def components(self) -> tuple[DirectionPredictor, DirectionPredictor]:
        return (self._first, self._second)

    def _index(self, pc: int) -> int:
        return (pc // INSTRUCTION_BYTES) & (self._meta_size - 1)

    def predict(self, pc: int) -> bool:
        if counter_predicts_taken(self._meta[self._index(pc)]):
            return self._first.predict(pc)
        return self._second.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        first_guess = self._first.predict(pc)
        second_guess = self._second.predict(pc)
        # Train the chooser only when the components disagree: move
        # toward whichever was right.
        if first_guess != second_guess:
            index = self._index(pc)
            self._meta[index] = saturating_update(
                self._meta[index], first_guess == taken
            )
        self._first.update(pc, taken)
        self._second.update(pc, taken)

    def reset(self) -> None:
        self._meta = [2] * self._meta_size
        self._first.reset()
        self._second.reset()

    @property
    def name(self) -> str:
        return f"comb({self._first.name},{self._second.name}):{self._meta_size}"
