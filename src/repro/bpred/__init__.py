"""Branch prediction substrate.

The paper's ReSim contains a fully parametric branch predictor made of
three cooperating structures (Section III): a **direction predictor**
(the evaluation uses a two-level scheme with a 4-entry branch history
table, 8-bit history registers and a 4096-entry PHT), a direct-mapped
512-entry **Branch Target Buffer**, and a 16-entry **Return Address
Stack**.  A script generates VHDL for any parameter combination — our
equivalent lives in :mod:`repro.fpga.vhdlgen` and consumes the same
:class:`PredictorConfig` used here.

Update discipline
-----------------
All predictor state is updated in *architectural program order* (ReSim
updates the predictor at Commit, per Section III).  The trace generator
uses the same discipline, which guarantees the central trace-driven
invariant: the generator and ReSim see identical predictor state at
every branch, so the wrong-path blocks injected into the trace are
exactly the ones ReSim's own predictions will follow.
"""

from repro.bpred.base import DirectionPredictor, Prediction
from repro.bpred.bimodal import BimodalPredictor
from repro.bpred.btb import BranchTargetBuffer
from repro.bpred.combining import CombiningPredictor
from repro.bpred.perfect import PerfectPredictor
from repro.bpred.ras import ReturnAddressStack
from repro.bpred.static_ import AlwaysNotTaken, AlwaysTaken
from repro.bpred.twolevel import TwoLevelPredictor
from repro.bpred.unit import BranchPredictorUnit, PredictorConfig, build_direction_predictor

__all__ = [
    "AlwaysNotTaken",
    "AlwaysTaken",
    "BimodalPredictor",
    "BranchPredictorUnit",
    "BranchTargetBuffer",
    "CombiningPredictor",
    "DirectionPredictor",
    "PerfectPredictor",
    "Prediction",
    "PredictorConfig",
    "ReturnAddressStack",
    "TwoLevelPredictor",
    "build_direction_predictor",
]
