"""Return Address Stack.

ReSim's evaluation configuration uses a 16-entry RAS (Section V.C).
The model is the standard circular stack: pushes beyond capacity
overwrite the oldest entry (no stall — this is a predictor, not a
correctness structure), pops from empty return ``None``.
"""

from __future__ import annotations


class ReturnAddressStack:
    """Fixed-depth circular return-address predictor stack."""

    def __init__(self, depth: int = 16) -> None:
        if depth <= 0:
            raise ValueError(f"depth must be positive, got {depth}")
        self._depth = depth
        self._stack: list[int] = [0] * depth
        self._top = 0      # index of next push slot
        self._count = 0    # valid entries, saturates at depth
        self.pushes = 0
        self.pops = 0
        self.underflows = 0

    @property
    def depth(self) -> int:
        return self._depth

    def __len__(self) -> int:
        return self._count

    def push(self, return_address: int) -> None:
        """Record the return address of a call."""
        self._stack[self._top] = return_address
        self._top = (self._top + 1) % self._depth
        self._count = min(self._count + 1, self._depth)
        self.pushes += 1

    def pop(self) -> int | None:
        """Predict the target of a return; None if the stack is empty."""
        self.pops += 1
        if self._count == 0:
            self.underflows += 1
            return None
        self._top = (self._top - 1) % self._depth
        self._count -= 1
        return self._stack[self._top]

    def peek(self) -> int | None:
        """Inspect the predicted return target without popping."""
        if self._count == 0:
            return None
        return self._stack[(self._top - 1) % self._depth]

    def reset(self) -> None:
        self._stack = [0] * self._depth
        self._top = 0
        self._count = 0
        self.pushes = 0
        self.pops = 0
        self.underflows = 0
