"""Replacement policies for the set-associative cache model.

Policies are per-cache objects consulted with the set index and the
list of resident ways; they return the victim way.  LRU is the paper's
(and SimpleScalar's) default; FIFO and random round out the usual menu
and exercise the policy interface in tests.
"""

from __future__ import annotations

import abc

from repro.utils.rng import XorShiftRNG


class ReplacementPolicy(abc.ABC):
    """Chooses a victim way within one set."""

    @abc.abstractmethod
    def on_access(self, set_index: int, way: int) -> None:
        """Note a hit (or fill) on ``way`` of ``set_index``."""

    @abc.abstractmethod
    def victim(self, set_index: int, occupied_ways: int) -> int:
        """Pick the way to evict from a full set of ``occupied_ways``."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Forget all access history."""


class LruPolicy(ReplacementPolicy):
    """Least-recently-used, tracked with a per-set logical clock."""

    def __init__(self, sets: int, assoc: int) -> None:
        self._assoc = assoc
        self._stamps: list[list[int]] = [[0] * assoc for _ in range(sets)]
        self._clock = 0

    def on_access(self, set_index: int, way: int) -> None:
        self._clock += 1
        self._stamps[set_index][way] = self._clock

    def victim(self, set_index: int, occupied_ways: int) -> int:
        stamps = self._stamps[set_index][:occupied_ways]
        return min(range(occupied_ways), key=stamps.__getitem__)

    def reset(self) -> None:
        for stamps in self._stamps:
            for way in range(self._assoc):
                stamps[way] = 0
        self._clock = 0


class FifoPolicy(ReplacementPolicy):
    """First-in-first-out: evict in fill order, ignore hits."""

    def __init__(self, sets: int, assoc: int) -> None:
        self._next: list[int] = [0] * sets
        self._assoc = assoc

    def on_access(self, set_index: int, way: int) -> None:
        pass  # hits do not affect FIFO order

    def victim(self, set_index: int, occupied_ways: int) -> int:
        way = self._next[set_index] % occupied_ways
        self._next[set_index] = (self._next[set_index] + 1) % self._assoc
        return way

    def reset(self) -> None:
        self._next = [0] * len(self._next)


class RandomPolicy(ReplacementPolicy):
    """Uniformly random victim from a deterministic PRNG stream."""

    def __init__(self, sets: int, assoc: int, seed: int = 0xCACE) -> None:
        self._seed = seed
        self._rng = XorShiftRNG(seed)

    def on_access(self, set_index: int, way: int) -> None:
        pass

    def victim(self, set_index: int, occupied_ways: int) -> int:
        return self._rng.randint(0, occupied_ways - 1)

    def reset(self) -> None:
        self._rng = XorShiftRNG(self._seed)


def make_policy(name: str, sets: int, assoc: int) -> ReplacementPolicy:
    """Instantiate a policy by its SimpleScalar-style letter or name."""
    key = name.lower()
    if key in ("l", "lru"):
        return LruPolicy(sets, assoc)
    if key in ("f", "fifo"):
        return FifoPolicy(sets, assoc)
    if key in ("r", "random"):
        return RandomPolicy(sets, assoc)
    raise ValueError(f"unknown replacement policy {name!r}")
