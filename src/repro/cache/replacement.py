"""Replacement policies for the set-associative cache model.

Policies are per-cache objects consulted with the set index and the
list of resident ways; they return the victim way.  LRU is the paper's
(and SimpleScalar's) default; FIFO and random round out the usual menu
and exercise the policy interface in tests.
"""

from __future__ import annotations

import abc

from repro.utils.registry import Registry
from repro.utils.rng import XorShiftRNG


class ReplacementPolicy(abc.ABC):
    """Chooses a victim way within one set."""

    @abc.abstractmethod
    def on_access(self, set_index: int, way: int) -> None:
        """Note a hit (or fill) on ``way`` of ``set_index``."""

    @abc.abstractmethod
    def victim(self, set_index: int, occupied_ways: int) -> int:
        """Pick the way to evict from a full set of ``occupied_ways``."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Forget all access history."""


class LruPolicy(ReplacementPolicy):
    """Least-recently-used, tracked with a per-set logical clock."""

    def __init__(self, sets: int, assoc: int) -> None:
        self._assoc = assoc
        self._stamps: list[list[int]] = [[0] * assoc for _ in range(sets)]
        self._clock = 0

    def on_access(self, set_index: int, way: int) -> None:
        self._clock += 1
        self._stamps[set_index][way] = self._clock

    def victim(self, set_index: int, occupied_ways: int) -> int:
        stamps = self._stamps[set_index][:occupied_ways]
        return min(range(occupied_ways), key=stamps.__getitem__)

    def reset(self) -> None:
        for stamps in self._stamps:
            for way in range(self._assoc):
                stamps[way] = 0
        self._clock = 0


class FifoPolicy(ReplacementPolicy):
    """First-in-first-out: evict in fill order, ignore hits."""

    def __init__(self, sets: int, assoc: int) -> None:
        self._next: list[int] = [0] * sets
        self._assoc = assoc

    def on_access(self, set_index: int, way: int) -> None:
        pass  # hits do not affect FIFO order

    def victim(self, set_index: int, occupied_ways: int) -> int:
        way = self._next[set_index] % occupied_ways
        self._next[set_index] = (self._next[set_index] + 1) % self._assoc
        return way

    def reset(self) -> None:
        self._next = [0] * len(self._next)


class RandomPolicy(ReplacementPolicy):
    """Uniformly random victim from a deterministic PRNG stream."""

    def __init__(self, sets: int, assoc: int, seed: int = 0xCACE) -> None:
        self._seed = seed
        self._rng = XorShiftRNG(seed)

    def on_access(self, set_index: int, way: int) -> None:
        pass

    def victim(self, set_index: int, occupied_ways: int) -> int:
        return self._rng.randint(0, occupied_ways - 1)

    def reset(self) -> None:
        self._rng = XorShiftRNG(self._seed)


#: Policy registry: name → ``(sets, assoc)``-constructible policy
#: class.  The SimpleScalar single-letter forms are registered as
#: aliases.  New policies register here and become usable from
#: :class:`~repro.cache.cache.CacheConfig` ``replacement=`` strings
#: (and therefore sweep axes and session specs) without new plumbing.
REPLACEMENT_POLICIES: Registry[type[ReplacementPolicy]] = Registry(
    "replacement policy")
REPLACEMENT_POLICIES.register("lru", LruPolicy, aliases=("l",))
REPLACEMENT_POLICIES.register("fifo", FifoPolicy, aliases=("f",))
REPLACEMENT_POLICIES.register("random", RandomPolicy, aliases=("r",))


def make_policy(name: str, sets: int, assoc: int) -> ReplacementPolicy:
    """Instantiate a policy by its SimpleScalar-style letter or name.

    Raises :class:`~repro.utils.registry.RegistryError` (a
    ``ValueError``) for an unknown name.
    """
    return REPLACEMENT_POLICIES.get(name.lower())(sets, assoc)
