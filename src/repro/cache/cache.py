"""Tag-only set-associative cache model.

The model tracks tags, valid and dirty bits — never data — exactly as
ReSim's FPGA implementation does (Table 4 discussion: caches need only
"the hit/miss indication and ... the access latency").  Write policy is
write-back / write-allocate, matching SimpleScalar's defaults that the
paper inherits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.replacement import ReplacementPolicy, make_policy


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of one cache level.

    The paper's FAST-comparison L1 configuration (Table 1 caption) is
    the default: 32 KB, 8-way, 64-byte blocks.
    """

    name: str = "l1"
    size_bytes: int = 32 * 1024
    block_bytes: int = 64
    assoc: int = 8
    hit_latency: int = 1
    replacement: str = "lru"

    def __post_init__(self) -> None:
        for label, value in (
            ("size_bytes", self.size_bytes),
            ("block_bytes", self.block_bytes),
            ("assoc", self.assoc),
        ):
            if value <= 0:
                raise ValueError(f"{label} must be positive, got {value}")
        if self.block_bytes & (self.block_bytes - 1):
            raise ValueError("block_bytes must be a power of two")
        if self.size_bytes % (self.block_bytes * self.assoc):
            raise ValueError(
                "size_bytes must be a multiple of block_bytes * assoc"
            )
        if self.hit_latency < 1:
            raise ValueError("hit_latency must be at least 1 cycle")
        if self.sets & (self.sets - 1):
            raise ValueError("number of sets must be a power of two")

    @property
    def sets(self) -> int:
        return self.size_bytes // (self.block_bytes * self.assoc)

    @property
    def tag_bits(self) -> int:
        """Bits of tag per block frame for a 32-bit address space."""
        offset_bits = self.block_bytes.bit_length() - 1
        index_bits = self.sets.bit_length() - 1
        return 32 - offset_bits - index_bits

    def describe(self) -> str:
        return (
            f"{self.name}: {self.size_bytes // 1024}KB, {self.assoc}-way, "
            f"{self.block_bytes}B blocks, {self.replacement}"
        )


@dataclass
class CacheStatistics:
    """Per-cache access counters (part of ReSim's statistics unit)."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass
class _Frame:
    tag: int
    dirty: bool = False


class Cache:
    """One tag-only cache level.

    ``probe`` answers hit/miss without side effects (ReSim's Issue
    stage checks the D-cache before Writeback to decide whether the
    writeback must be postponed); ``access`` performs the full lookup
    with fill and replacement.
    """

    def __init__(self, config: CacheConfig,
                 policy: ReplacementPolicy | None = None) -> None:
        self._config = config
        # Fixed way slots so policy way indices stay stable across
        # evictions (a frame is replaced in place, never shifted).
        self._sets: list[list[_Frame | None]] = [
            [None] * config.assoc for _ in range(config.sets)
        ]
        self._policy = policy or make_policy(
            config.replacement, config.sets, config.assoc
        )
        self.stats = CacheStatistics()

    @property
    def config(self) -> CacheConfig:
        return self._config

    def _split(self, address: int) -> tuple[int, int]:
        block = address // self._config.block_bytes
        return block % self._config.sets, block // self._config.sets

    def probe(self, address: int) -> bool:
        """Hit/miss indication with no state change."""
        set_index, tag = self._split(address)
        return any(
            frame is not None and frame.tag == tag
            for frame in self._sets[set_index]
        )

    def access(self, address: int, is_write: bool = False) -> tuple[bool, bool]:
        """Perform one access.

        Returns
        -------
        (hit, writeback):
            ``hit`` — whether the block was resident; ``writeback`` —
            whether a dirty victim was evicted (the caller charges the
            next level).
        """
        set_index, tag = self._split(address)
        ways = self._sets[set_index]
        self.stats.accesses += 1

        free_way = None
        for way, frame in enumerate(ways):
            if frame is None:
                if free_way is None:
                    free_way = way
                continue
            if frame.tag == tag:
                self.stats.hits += 1
                self._policy.on_access(set_index, way)
                if is_write:
                    frame.dirty = True
                return True, False

        # Miss: allocate (write-allocate policy covers both kinds).
        self.stats.misses += 1
        writeback = False
        if free_way is None:
            victim = self._policy.victim(set_index, self._config.assoc)
            victim_frame = ways[victim]
            assert victim_frame is not None
            if victim_frame.dirty:
                writeback = True
                self.stats.writebacks += 1
            self.stats.evictions += 1
            free_way = victim
        ways[free_way] = _Frame(tag=tag, dirty=is_write)
        self._policy.on_access(set_index, free_way)
        return False, writeback

    def flush(self) -> int:
        """Invalidate everything; returns the number of dirty lines."""
        dirty = sum(
            1 for ways in self._sets for frame in ways
            if frame is not None and frame.dirty
        )
        self._sets = [
            [None] * self._config.assoc for _ in range(self._config.sets)
        ]
        self._policy.reset()
        return dirty

    def reset_statistics(self) -> None:
        self.stats = CacheStatistics()
