"""Cache hierarchy substrate.

ReSim simulates caches without storing data: *"Since we do not store
the actual data, we need to provide only the hit/miss indication and
simulate the access latency, so the actual cache requirements are in
the range of 1000 slices plus a few memory blocks for the tags"*
(Section V, Table 4 discussion).  These models are therefore tag-only:
a set-associative tag array with a replacement policy, returning
(hit, latency) per access.

The paper's two memory configurations:

* **perfect memory** — every access hits in one cycle
  (:class:`PerfectMemory`);
* **32 KB L1 instruction and data caches** — 8-way associative, 64-byte
  blocks for the FAST comparison (Table 1 caption; the prose also
  mentions a 2-way variant, which :class:`CacheConfig` expresses just
  as easily).
"""

from repro.cache.cache import Cache, CacheConfig, CacheStatistics
from repro.cache.hierarchy import AccessResult, MemorySystem, PerfectMemory
from repro.cache.replacement import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    ReplacementPolicy,
    make_policy,
)

__all__ = [
    "AccessResult",
    "Cache",
    "CacheConfig",
    "CacheStatistics",
    "FifoPolicy",
    "LruPolicy",
    "MemorySystem",
    "PerfectMemory",
    "RandomPolicy",
    "ReplacementPolicy",
    "make_policy",
]
