"""Memory system façade used by the timing engine.

Two implementations mirror the paper's two evaluation configurations:

* :class:`PerfectMemory` — every access hits in one cycle (Table 1,
  left: "perfect memory system");
* :class:`MemorySystem` — split L1 instruction/data caches over a flat
  main memory with a fixed miss latency (Table 1, right: 32 KB L1s for
  the FAST comparison).

ReSim accesses the I-cache during Fetch, the D-cache when loads issue
(a read port is allocated "if their value has not been forwarded in
the LSQ") and when committed stores release to memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.cache import Cache, CacheConfig


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one memory-system access."""

    hit: bool
    latency: int  # total cycles until data/completion


class PerfectMemory:
    """The paper's perfect memory system: all accesses hit in 1 cycle."""

    def __init__(self) -> None:
        self.ifetches = 0
        self.reads = 0
        self.writes = 0

    @property
    def is_perfect(self) -> bool:
        return True

    def ifetch(self, address: int) -> AccessResult:
        self.ifetches += 1
        return AccessResult(hit=True, latency=1)

    def dread(self, address: int) -> AccessResult:
        self.reads += 1
        return AccessResult(hit=True, latency=1)

    def dwrite(self, address: int) -> AccessResult:
        self.writes += 1
        return AccessResult(hit=True, latency=1)

    def describe(self) -> str:
        return "perfect memory"


class MemorySystem:
    """Split L1 I/D caches over flat main memory.

    Parameters
    ----------
    icache_config, dcache_config:
        Geometries of the two L1 caches; the defaults are the paper's
        FAST-comparison configuration (32 KB, 8-way, 64 B blocks).
    memory_latency:
        Cycles for a main-memory access on an L1 miss (SimpleScalar's
        classic default of 18 is used; the paper does not state its
        value, see EXPERIMENTS.md).
    """

    def __init__(
        self,
        icache_config: CacheConfig | None = None,
        dcache_config: CacheConfig | None = None,
        memory_latency: int = 18,
    ) -> None:
        if memory_latency < 1:
            raise ValueError("memory_latency must be at least 1 cycle")
        self.icache = Cache(icache_config or CacheConfig(name="il1"))
        self.dcache = Cache(dcache_config or CacheConfig(name="dl1"))
        self.memory_latency = memory_latency

    @property
    def is_perfect(self) -> bool:
        return False

    def _access(self, cache: Cache, address: int, is_write: bool) -> AccessResult:
        hit, writeback = cache.access(address, is_write=is_write)
        latency = cache.config.hit_latency
        if not hit:
            latency += self.memory_latency
        if writeback:
            # Dirty victim drains to memory; modelled as additional
            # occupancy of the memory port, not added to load latency
            # (write buffers hide it), but it is counted in statistics.
            pass
        return AccessResult(hit=hit, latency=latency)

    def ifetch(self, address: int) -> AccessResult:
        """Instruction fetch through the L1 I-cache."""
        return self._access(self.icache, address, is_write=False)

    def dread(self, address: int) -> AccessResult:
        """Load access through the L1 D-cache."""
        return self._access(self.dcache, address, is_write=False)

    def dwrite(self, address: int) -> AccessResult:
        """Committed-store access through the L1 D-cache."""
        return self._access(self.dcache, address, is_write=True)

    def describe(self) -> str:
        return (
            f"{self.icache.config.describe()}; {self.dcache.config.describe()}; "
            f"memory {self.memory_latency} cycles"
        )
