"""Streaming co-simulation driver.

The functional simulator produces tagged records chunk by chunk; the
engine consumes them as they arrive through an
:class:`~repro.trace.source.InMemorySource` over a growing list —
fetch simply starves until the next chunk lands, exactly like the
hardware waiting on its input FIFO.  At the end the driver verifies
the streamed run produced *identical timing* to an offline run over
the full trace: chunked delivery must be performance-transparent to
the simulated machine, because trace content, not arrival batching,
defines timing.

The wall-clock model is a three-stage pipeline:

* **produce** — the functional simulator's host rate (measured);
* **transfer** — trace bits over the CPU→FPGA link (modelled);
* **simulate** — the FPGA engine at f_minor / L x trace records
  (modelled from the engine's own cycle counts).

Steady-state co-simulation throughput is the minimum of the three
stage rates; the result names the bottleneck (the paper's Table 3
discussion is exactly the transfer-stage analysis).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.config import ProcessorConfig
from repro.core.minorpipe import select_pipeline
from repro.fpga.device import FpgaDevice
from repro.isa.program import Program
from repro.session import Simulation
from repro.trace.source import InMemorySource


@dataclass(frozen=True)
class StageRates:
    """Records-per-second capacity of each co-simulation stage."""

    produce: float
    transfer: float
    simulate: float

    @property
    def bottleneck(self) -> str:
        slowest = min(("produce", self.produce),
                      ("transfer", self.transfer),
                      ("simulate", self.simulate),
                      key=lambda pair: pair[1])
        return slowest[0]

    @property
    def pipeline_rate(self) -> float:
        """Steady-state records/second through the whole pipeline."""
        return min(self.produce, self.transfer, self.simulate)


@dataclass
class CosimResult:
    """Outcome of one streamed run."""

    records: int
    chunks: int
    major_cycles: int
    offline_major_cycles: int
    rates: StageRates
    bits_per_instruction: float

    @property
    def timing_transparent(self) -> bool:
        """Streaming must not change simulated timing."""
        return self.major_cycles == self.offline_major_cycles

    def summary(self) -> str:
        return (
            f"{self.records} records in {self.chunks} chunks -> "
            f"{self.major_cycles} simulated cycles "
            f"(offline: {self.offline_major_cycles}); "
            f"bottleneck: {self.rates.bottleneck} at "
            f"{self.rates.pipeline_rate / 1e6:.2f} M records/s"
        )


class OnTheFlyCosimulation:
    """Functional simulator → link → ReSim engine, streamed."""

    def __init__(
        self,
        config: ProcessorConfig,
        device: FpgaDevice,
        link_gbps: float = 6.4,
        chunk_records: int = 256,
    ) -> None:
        if link_gbps <= 0:
            raise ValueError("link bandwidth must be positive")
        if chunk_records <= 0:
            raise ValueError("chunk size must be positive")
        self._config = config
        self._device = device
        self._link_gbps = link_gbps
        self._chunk_records = chunk_records

    def run(self, program: Program,
            inputs: list[int] | None = None) -> CosimResult:
        """Co-simulate one assembled program end to end."""
        simulation = Simulation.for_program(program, self._config,
                                            inputs=inputs)
        produce_start = time.perf_counter()
        prepared = simulation.prepare()
        produce_seconds = max(time.perf_counter() - produce_start, 1e-9)
        records = prepared.records

        # Streamed engine: an InMemorySource over a list that grows
        # chunk by chunk while the engine steps (the source reads its
        # length live, so appended chunks become visible).  The link
        # is flow-controlled: a new chunk is delivered whenever the
        # input FIFO's lookahead drops below one chunk, so fetch never
        # starves and the streamed run is cycle-identical to the
        # offline one (asserted via ``timing_transparent``).
        stream: list = []
        engine = simulation.build_engine(trace=InMemorySource(stream))
        chunks = 0
        position = 0
        while True:
            while (position < len(records)
                   and len(stream) - engine.cursor_position
                   < self._chunk_records):
                stream.extend(
                    records[position:position + self._chunk_records]
                )
                position += self._chunk_records
                chunks += 1
            if engine.done and position >= len(records):
                break
            engine.step()

        offline = simulation.run().result

        stats = prepared.trace_stats
        pipeline = select_pipeline(self._config.width,
                                   self._config.memory_ports)
        simulate_rate = (
            self._device.minor_cycle_mhz * 1e6
            / pipeline.minor_cycles_per_major
            * (len(records) / max(1, engine.cycle))
        )
        transfer_rate = (
            self._link_gbps * 1e9 / max(1.0, stats.bits_per_instruction)
        )
        produce_rate = len(records) / produce_seconds

        return CosimResult(
            records=len(records),
            chunks=chunks,
            major_cycles=engine.cycle,
            offline_major_cycles=offline.major_cycles,
            rates=StageRates(produce=produce_rate,
                             transfer=transfer_rate,
                             simulate=simulate_rate),
            bits_per_instruction=stats.bits_per_instruction,
        )

