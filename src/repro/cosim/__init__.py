"""On-the-fly co-simulation — the paper's FAST-style usage mode.

*"ReSim can be used with traces that are prepared off-line ... or can
be used in combination with a fast functional software simulator to
efficiently add the timing information on the fly, much like the FAST
approach."* (Section I; reiterated as future work in Section VI.)

:class:`OnTheFlyCosimulation` couples the functional side (a real
``sim-bpred`` run over an assembled program, streamed in chunks) with
the timing side (the ReSim engine consuming records as they arrive)
and a transfer-channel model, then reports which of the three stages —
functional production, link transfer, FPGA timing simulation — bounds
the pipeline.
"""

from repro.cosim.streaming import (
    CosimResult,
    OnTheFlyCosimulation,
    StageRates,
)

__all__ = ["CosimResult", "OnTheFlyCosimulation", "StageRates"]
