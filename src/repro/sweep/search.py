"""Adaptive design-space search: evaluate points, not whole grids.

A grid sweep simulates every combination; past a handful of axes that
is exponentially wasteful when the question is "which configuration is
*best*?".  This module adds the strategy layer the ROADMAP promised on
top of the sweep subsystem: a :class:`SearchStrategy` proposes batches
of design points, a :class:`SearchRunner` evaluates each batch through
the **same** machinery as a grid sweep — shared per-predictor traces,
per-point checkpoints, any :class:`~repro.exec.ExecutionBackend` — and
feeds the scores back until the strategy stops proposing.

Three strategies ship, all registered in :data:`SEARCHES`:

* :class:`GridSearch` — exhaustive; a sweep expressed as a search
  (the degenerate strategy that proposes the whole grid once);
* :class:`RandomSearch` — N points sampled uniformly from the grid
  with an explicit seed (the repo's own
  :class:`~repro.utils.rng.XorShiftRNG`, so runs are bit-for-bit
  reproducible across platforms and Python versions);
* :class:`HillClimb` — greedy local search: start somewhere, evaluate
  the axis-neighbors (adjacent values in each axis's declared order),
  move to the best strict improvement, stop at a local optimum.

Strategies are deterministic by construction — proposal order is
fixed, ties break on first-proposed — so a search is exactly as
reproducible (and as resumable, via checkpoints) as a grid sweep.

Because evaluation goes through :meth:`SweepRunner.evaluate`, a
search run interoperates with everything sweeps have: results
directories can be shared between a search and a later full sweep
(points already searched resume from their checkpoints), and the
returned :class:`SearchResult` wraps an ordinary
:class:`~repro.sweep.result.SweepResult` for tables and exports.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Callable, Mapping, Sequence

from repro.exec import (
    DEFAULT_REGIONS,
    DEFAULT_WARMUP_SEGMENTS,
    ExecutionBackend,
)
from repro.sweep.progress import SweepProgress
from repro.sweep.result import SORT_KEYS, SweepOutcome, SweepResult
from repro.sweep.runner import SweepRunner
from repro.sweep.spec import SweepError, SweepPoint, SweepSpec
from repro.utils.registry import Registry
from repro.utils.rng import XorShiftRNG

#: Named search strategies (``grid``, ``random``, ``hillclimb``);
#: ``resim search --strategy`` resolves here, so new strategies
#: registered by extensions become valid flags with no CLI change.
SEARCHES: Registry[type] = Registry("search strategy")

#: Safety net: no strategy may run more proposal rounds than this
#: (a buggy strategy that never stops must not sweep forever).
MAX_ROUNDS = 1000


class SearchError(SweepError):
    """Raised on malformed search strategies or parameters."""


def _metric(name: str) -> tuple[Callable[[SweepOutcome], float], bool]:
    """Resolve a metric name to (score function, larger-is-better)."""
    try:
        return SORT_KEYS[name]
    except KeyError:
        raise SearchError(
            f"unknown search metric {name!r}; choose from "
            f"{', '.join(SORT_KEYS)}"
        ) from None


class SearchStrategy(ABC):
    """Proposes design points; learns from their outcomes.

    The contract :class:`SearchRunner` drives: :meth:`propose` returns
    the next batch to evaluate (empty tuple = converged/done), then
    :meth:`observe` receives the batch's outcomes before the next
    :meth:`propose`.  A strategy never re-proposes a point it has
    already observed, and proposal order must be deterministic.
    """

    #: Registry key / display name; subclasses override.
    name = "?"

    def __init__(self, spec: SweepSpec, *, metric: str = "ipc") -> None:
        self.spec = spec
        self.metric = metric
        self._score, self._larger_is_better = _metric(metric)

    def better(self, candidate: SweepOutcome,
               incumbent: SweepOutcome | None) -> bool:
        """Strictly better under this strategy's metric."""
        if incumbent is None:
            return True
        if self._larger_is_better:
            return self._score(candidate) > self._score(incumbent)
        return self._score(candidate) < self._score(incumbent)

    def best_of(self, outcomes: Sequence[SweepOutcome]
                ) -> SweepOutcome | None:
        """Best outcome under the metric (first wins ties)."""
        best: SweepOutcome | None = None
        for outcome in outcomes:
            if self.better(outcome, best):
                best = outcome
        return best

    @abstractmethod
    def propose(self) -> tuple[SweepPoint, ...]:
        """The next batch of unevaluated points (empty = done)."""

    def observe(self, outcomes: Sequence[SweepOutcome]) -> None:
        """Feed back the outcomes of the last proposed batch."""

    def describe(self) -> str:
        return f"{type(self).__name__}(metric={self.metric!r})"

    __repr__ = describe


@SEARCHES.register("grid")
class GridSearch(SearchStrategy):
    """Exhaustive search: the whole validated grid, proposed once.

    Exists so the search CLI/API degrades gracefully to a sweep (and
    as the reference the adaptive strategies are judged against: any
    strategy's best should approach GridSearch's at a fraction of the
    evaluations).
    """

    name = "grid"

    def __init__(self, spec: SweepSpec, *, metric: str = "ipc") -> None:
        super().__init__(spec, metric=metric)
        self._proposed = False

    def propose(self) -> tuple[SweepPoint, ...]:
        if self._proposed:
            return ()
        self._proposed = True
        return self.spec.expand().points


@SEARCHES.register("random")
class RandomSearch(SearchStrategy):
    """Uniform random sampling of the grid, explicitly seeded.

    Samples ``samples`` *distinct, valid* design points (invalid
    combinations and config-level duplicates are resampled, exactly
    mirroring grid expansion's filtering).  Seeding uses the repo's
    own xorshift generator, so the proposed set is identical across
    platforms and interpreter versions — "random" never means
    "unreproducible" here.  When the grid is no larger than
    ``samples`` the whole grid is proposed (sampling would only
    permute it).
    """

    name = "random"

    #: Resampling budget per requested sample; on grids dominated by
    #: invalid/duplicate combinations the strategy settles for fewer
    #: points rather than looping forever.
    ATTEMPTS_PER_SAMPLE = 64

    def __init__(self, spec: SweepSpec, *, samples: int = 16,
                 seed: int = 1, metric: str = "ipc") -> None:
        super().__init__(spec, metric=metric)
        if samples < 1:
            raise SearchError(f"samples must be >= 1, got {samples}")
        self.samples = samples
        self.seed = seed
        self._proposed = False

    def propose(self) -> tuple[SweepPoint, ...]:
        if self._proposed:
            return ()
        self._proposed = True
        if self.spec.grid_size <= self.samples:
            return self.spec.expand().points
        rng = XorShiftRNG(self.seed)
        axes = self.spec.coerced_axes()
        names = list(axes)
        points: list[SweepPoint] = []
        seen: set[str] = set()
        attempts = self.samples * self.ATTEMPTS_PER_SAMPLE
        while len(points) < self.samples and attempts > 0:
            attempts -= 1
            values = {name: axes[name][rng.randint(
                0, len(axes[name]) - 1)] for name in names}
            try:
                point = self.spec.make_point(values)
            except SweepError:
                continue  # violates processor constraints; resample
            if point.key in seen:
                continue
            seen.add(point.key)
            points.append(point)
        return tuple(points)


@SEARCHES.register("hillclimb")
class HillClimb(SearchStrategy):
    """Greedy local search over the axis lattice.

    The neighborhood of a point is "one step along one axis": for
    each axis, the previous and next value in its declared order.
    Each round proposes the not-yet-scored frontier (current point
    plus neighbors); once all are scored, the climber moves to the
    best *strictly* improving neighbor (ties break on proposal order:
    axes in declaration order, previous before next) and repeats,
    stopping at a local optimum or after ``max_steps`` moves.

    ``start`` optionally places the climber (axis name → value, which
    must appear in that axis's values); by default it starts at every
    axis's first declared value.  Order each axis from cheap to
    expensive and the climb reads as "grow the machine while it keeps
    paying off".
    """

    name = "hillclimb"

    def __init__(self, spec: SweepSpec, *, metric: str = "ipc",
                 max_steps: int = 64,
                 start: Mapping[str, object] | None = None) -> None:
        super().__init__(spec, metric=metric)
        if max_steps < 0:
            raise SearchError(
                f"max_steps must be >= 0, got {max_steps}")
        self.max_steps = max_steps
        self._axes = spec.coerced_axes()
        self._names = list(self._axes)
        self._position = {name: 0 for name in self._names}
        self._explicit_start = bool(start)
        if start:
            unknown = set(start) - set(self._names)
            if unknown:
                raise SearchError(
                    f"start names unknown axes: "
                    f"{', '.join(sorted(unknown))}"
                )
            for name, value in start.items():
                values = self._axes[name]
                try:
                    self._position[name] = values.index(value)
                except ValueError:
                    raise SearchError(
                        f"start value {value!r} is not among axis "
                        f"{name!r} values {values!r}"
                    ) from None
        self._scores: dict[str, SweepOutcome] = {}
        self._steps = 0
        self._done = False
        #: Positions visited, as point labels (for result metadata).
        self.trajectory: list[str] = []

    def _point_at(self, position: Mapping[str, int]
                  ) -> SweepPoint | None:
        values = {name: self._axes[name][position[name]]
                  for name in self._names}
        try:
            return self.spec.make_point(values)
        except SweepError:
            return None  # invalid lattice site; not a neighbor

    def _neighbor_sites(self) -> list[tuple[dict, SweepPoint]]:
        """Valid lattice neighbors of the current position, as
        (position, point) pairs in deterministic order (axes in
        declaration order, previous value before next) — the single
        definition of the neighborhood, shared by frontier proposal
        and move selection."""
        sites: list[tuple[dict, SweepPoint]] = []
        for name in self._names:
            for delta in (-1, +1):
                index = self._position[name] + delta
                if not 0 <= index < len(self._axes[name]):
                    continue
                position = {**self._position, name: index}
                point = self._point_at(position)
                if point is not None:
                    sites.append((position, point))
        return sites

    def _first_valid_position(self) -> dict:
        """The first lattice site (cross-product index order) whose
        config the processor accepts — the fallback start when the
        all-first-values corner violates a constraint."""
        from itertools import product as _product
        for indices in _product(*(range(len(self._axes[name]))
                                  for name in self._names)):
            position = dict(zip(self._names, indices, strict=True))
            if self._point_at(position) is not None:
                return position
        raise SearchError(
            "hill-climb found no valid design point in the grid")

    def propose(self) -> tuple[SweepPoint, ...]:
        while not self._done:
            current = self._point_at(self._position)
            if current is None:
                if self._explicit_start:
                    raise SearchError(
                        "hill-climb start point violates processor "
                        "constraints; pick a valid start"
                    )
                # Default corner invalid (e.g. smallest ROB under a
                # wide base machine): slide to the first valid site
                # instead of dead-ending.
                self._position = self._first_valid_position()
                current = self._point_at(self._position)
            if not self.trajectory:
                self.trajectory.append(current.label)
            # Neighbors only matter while moves remain in the budget;
            # a climber that cannot leave its position must not spend
            # simulations scoring places it can never go.
            sites = self._neighbor_sites() \
                if self._steps < self.max_steps else []
            frontier = [current] + [point for _, point in sites]
            needed, seen_keys = [], set()
            for point in frontier:
                if point.key in self._scores or point.key in seen_keys:
                    continue
                seen_keys.add(point.key)
                needed.append(point)
            if needed:
                return tuple(needed)
            # Whole frontier scored: move or stop.
            if self._steps >= self.max_steps:
                self._done = True
                break
            best, best_position = None, None
            for position, point in sites:
                outcome = self._scores[point.key]
                if self.better(outcome, best):
                    best, best_position = outcome, position
            incumbent = self._scores[current.key]
            if best is None or not self.better(best, incumbent):
                self._done = True  # local optimum
                break
            self._position = best_position
            self._steps += 1
            self.trajectory.append(
                self._point_at(self._position).label)
        return ()

    def observe(self, outcomes: Sequence[SweepOutcome]) -> None:
        for outcome in outcomes:
            self._scores[outcome.key] = outcome

    @property
    def steps(self) -> int:
        """Moves accepted so far."""
        return self._steps


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one adaptive search.

    ``result`` is a plain :class:`~repro.sweep.result.SweepResult`
    over every point evaluated (in evaluation order) — all the
    sorting/table/export machinery applies.  ``best`` is the winner
    under the strategy's metric.
    """

    result: SweepResult
    best: SweepOutcome
    strategy: str
    metric: str
    rounds: int

    @property
    def outcomes(self) -> tuple[SweepOutcome, ...]:
        return self.result.outcomes

    def __len__(self) -> int:
        return len(self.result)

    def __iter__(self):
        return iter(self.result)

    def table(self, **kwargs) -> str:
        return self.result.table(**kwargs)

    def summary(self) -> str:
        """One line: what won, at what score, for how many sims."""
        score = SORT_KEYS[self.metric][0](self.best)
        return (f"{self.strategy} search evaluated {len(self)} "
                f"point(s) in {self.rounds} round(s); best "
                f"{self.metric}={score:.4f} at {self.best.label}")


class SearchRunner:
    """Drive a strategy through the sweep evaluation machinery.

    Construction mirrors :class:`~repro.sweep.runner.SweepRunner`
    (same workload/results-dir/budget/seed/backend semantics — the
    strategy's spec supplies the axes); checkpoints written by a
    search are interchangeable with a sweep's over the same results
    directory.
    """

    def __init__(
        self,
        strategy: SearchStrategy,
        workload: str = "gzip",
        *,
        results_dir: str | Path,
        budget: int = 30_000,
        seed: int = 7,
        workers: int = 1,
        backend: ExecutionBackend | None = None,
        progress: SweepProgress | None = None,
        shards: int = 1,
        segment_records: int | None = None,
        engine: str = "reference",
        sampling: str = "full",
        regions: int = DEFAULT_REGIONS,
        region_seed: int = 0,
        region_warmup: int = DEFAULT_WARMUP_SEGMENTS,
    ) -> None:
        self.strategy = strategy
        extra = {} if segment_records is None \
            else {"segment_records": segment_records}
        self._runner = SweepRunner(
            strategy.spec, workload, results_dir=results_dir,
            budget=budget, seed=seed, workers=workers,
            backend=backend, progress=progress, shards=shards,
            engine=engine, sampling=sampling, regions=regions,
            region_seed=region_seed, region_warmup=region_warmup,
            **extra,
        )

    @property
    def runner(self) -> SweepRunner:
        """The underlying evaluator (trace prep, checkpoints,
        backend)."""
        return self._runner

    def run(self) -> SearchResult:
        """Propose/evaluate/observe until the strategy stops."""
        progress = self._runner.progress
        progress.start(None, label="search")
        evaluated: dict[str, SweepOutcome] = {}
        rounds = 0
        while rounds < MAX_ROUNDS:
            batch = [point for point in self.strategy.propose()
                     if point.key not in evaluated]
            if not batch:
                break
            rounds += 1
            progress.round(rounds, len(batch))
            outcomes = self._runner.evaluate(batch)
            for outcome in outcomes:
                evaluated[outcome.key] = outcome
            self.strategy.observe(outcomes)
        else:
            raise SearchError(
                f"strategy {self.strategy.name!r} did not converge "
                f"within {MAX_ROUNDS} rounds"
            )
        if not evaluated:
            raise SearchError(
                f"strategy {self.strategy.name!r} proposed no design "
                f"points"
            )
        progress.finish()
        best = self.strategy.best_of(list(evaluated.values()))
        headline, by_predictor = self._runner.trace_summary()
        metadata = {
            "search": {
                "strategy": self.strategy.name,
                "metric": self.strategy.metric,
                "rounds": rounds,
                "evaluated": len(evaluated),
            },
            "trace_bits_per_instruction_by_predictor": by_predictor,
        }
        if isinstance(self.strategy, HillClimb):
            metadata["search"]["trajectory"] = \
                list(self.strategy.trajectory)
        sweep_result = SweepResult(
            outcomes=tuple(evaluated.values()),
            workload=self._runner.workload,
            budget=self._runner.budget,
            seed=self._runner.seed,
            trace_bits_per_instruction=headline,
            metadata=metadata,
        )
        return SearchResult(
            result=sweep_result,
            best=best,
            strategy=self.strategy.name,
            metric=self.strategy.metric,
            rounds=rounds,
        )


def run_search(
    strategy: SearchStrategy,
    workload: str = "gzip",
    *,
    results_dir: str | Path,
    budget: int = 30_000,
    seed: int = 7,
    workers: int = 1,
    backend: ExecutionBackend | None = None,
    progress: SweepProgress | None = None,
    shards: int = 1,
    segment_records: int | None = None,
    engine: str = "reference",
    sampling: str = "full",
    regions: int = DEFAULT_REGIONS,
    region_seed: int = 0,
    region_warmup: int = DEFAULT_WARMUP_SEGMENTS,
) -> SearchResult:
    """One-call convenience wrapper around :class:`SearchRunner`."""
    return SearchRunner(
        strategy, workload, results_dir=results_dir, budget=budget,
        seed=seed, workers=workers, backend=backend, progress=progress,
        shards=shards, segment_records=segment_records, engine=engine,
        sampling=sampling, regions=regions, region_seed=region_seed,
        region_warmup=region_warmup,
    ).run()
