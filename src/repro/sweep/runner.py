"""Parallel sweep execution with per-point checkpointing.

The paper's primary usage mode is traces *"prepared off-line ... for
bulk simulations with varying design parameters"*.  This module is
that bulk mode: each workload trace is generated (or loaded) **once**,
persisted through :mod:`repro.trace.fileio`, and then every design
point of a :class:`~repro.sweep.spec.SweepSpec` is simulated against
it — fanned out over a ``ProcessPoolExecutor`` when ``workers > 1``.

Durability: each finished design point is written to
``<results_dir>/<config-key>.json`` via an atomic
write-tmpfile-then-rename, so a sweep killed halfway resumes from its
checkpoints instead of restarting — rerunning the same
:class:`SweepRunner` re-simulates only the missing points.  Checkpoints
embed the full config dict and are validated on load; a corrupt or
mismatched checkpoint is discarded and recomputed, never trusted.

Determinism: the engine is a deterministic function of (config,
records), and serial and parallel execution share the same worker
function, so ``workers=N`` produces bit-identical
:class:`SimulationStatistics` to ``workers=1`` (the test suite checks
this).

Trace sharing: ReSim's wrong-path handling is trace-authoritative
(Section V.A) — the tagged blocks recorded at generation time *are*
the misprediction signal.  Sizing axes (ROB, LSQ, IFQ, width, FU
mixes, caches) therefore share one trace, exactly as in the paper's
off-line mode.  The **predictor** is different: sharing one trace
across predictor schemes would make every scheme score identically,
so the runner generates one trace per *distinct predictor* in the
grid (``trace-<predictor-key>.rtrc``), amortized across all other
axes.  Generation ROB/IFQ always come from the base config.

Memory: the whole pipeline is streaming.  The coordinator generates
each shared trace straight into a segmented v2 file
(:func:`~repro.workloads.tracegen.write_workload_trace`, one encoder
segment resident), and every worker replays it through a
:class:`~repro.trace.source.FileSource` (one decoded segment
resident) — no process ever materializes a full record list, so the
sweepable trace budget is bounded by disk, not by per-worker RAM.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass, replace
from pathlib import Path

from repro.bpred.unit import PredictorConfig
from repro.serialize import (
    canonical_digest,
    config_from_dict,
    config_to_dict,
    stats_from_dict,
    stats_to_dict,
)
from repro.session import Simulation
from repro.sweep.result import SweepOutcome, SweepResult
from repro.sweep.spec import SweepError, SweepPoint, SweepSpec
from repro.trace.fileio import TraceFileError, read_trace_header
from repro.workloads.profiles import SPECINT_PROFILES
from repro.workloads.tracegen import (
    UnknownWorkloadError,
    is_known_workload,
    write_workload_trace,
)

#: Checkpoint schema version; bump on incompatible layout changes.
CHECKPOINT_SCHEMA = 1

#: Filename of the sweep manifest inside a results directory.
MANIFEST_FILENAME = "sweep.json"


def predictor_key(predictor: PredictorConfig) -> str:
    """Short stable identifier of one generation predictor."""
    return canonical_digest(asdict(predictor), length=12)


def trace_filename(predictor: PredictorConfig) -> str:
    """Filename of the shared trace generated with one predictor."""
    return f"trace-{predictor_key(predictor)}.rtrc"


# ---------------------------------------------------------------------
# Worker side.  Module-level so it pickles into pool processes.


def _simulate_point(trace_path: str, config_dict: dict,
                    checkpoint_path: str,
                    start_pc: int | None,
                    provenance: dict) -> dict:
    """Simulate one design point and checkpoint it atomically.

    The persisted trace is *streamed* (one decoded segment resident at
    a time), so a worker's footprint is bounded by the segment size no
    matter how large the shared trace is — decoding is repeated per
    design point, which trades a little CPU for the constant memory
    that lets ``workers`` scale with cores instead of with
    ``workers x trace_length``.

    ``provenance`` (the sweep manifest) is embedded so a checkpoint
    stays self-describing: even if ``sweep.json`` is deleted, results
    computed under different workload/budget/seed parameters cannot
    be revived as this sweep's.
    """
    config = config_from_dict(config_dict)
    result = Simulation.for_trace_file(
        trace_path, config=config,
    ).with_start_pc(start_pc).run().result
    payload = {
        "schema": CHECKPOINT_SCHEMA,
        "sweep": provenance,
        "config": config_dict,
        "stats": stats_to_dict(result.stats),
    }
    target = Path(checkpoint_path)
    tmp = target.with_suffix(".tmp")
    tmp.write_text(json.dumps(payload, sort_keys=True))
    os.replace(tmp, target)
    return payload


# ---------------------------------------------------------------------
# Coordinator side.


@dataclass(frozen=True)
class _TraceInfo:
    path: Path
    start_pc: int | None
    bits_per_instruction: float


class SweepRunner:
    """Run every design point of a spec against shared traces (one
    per distinct generation predictor; see module docstring).

    Parameters
    ----------
    spec:
        The parameter grid (see :class:`~repro.sweep.spec.SweepSpec`).
    workload:
        A SPECINT profile name (synthetic generator) or an assembly
        kernel name (traced through the functional simulator).
    results_dir:
        Where the shared traces, the manifest, and per-point
        checkpoints live.  Reusing the directory resumes the sweep;
        mixing workloads/budgets/seeds in one directory is refused.
    budget:
        Instruction budget for synthetic workloads (kernels run to
        completion).
    seed:
        Synthetic-generator seed.
    workers:
        Process count for the fan-out; ``1`` runs in-process (the
        serial reference path).
    """

    def __init__(
        self,
        spec: SweepSpec,
        workload: str = "gzip",
        *,
        results_dir: str | Path,
        budget: int = 30_000,
        seed: int = 7,
        workers: int = 1,
    ) -> None:
        if workers < 1:
            raise SweepError(f"workers must be >= 1, got {workers}")
        if not is_known_workload(workload):
            raise SweepError(str(UnknownWorkloadError(workload)))
        self._is_synthetic = workload in SPECINT_PROFILES
        self.spec = spec
        self.workload = workload
        self.results_dir = Path(results_dir)
        self.budget = budget
        self.seed = seed
        self.workers = workers

    # -- trace management ---------------------------------------------

    def _manifest(self) -> dict:
        # Includes every parameter the shared traces' content depends
        # on.  Predictors are NOT pinned here — each distinct
        # predictor gets its own trace file keyed by predictor_key —
        # but the generation ROB/IFQ come from the base config, and
        # budget/seed shape synthetic workloads (kernels run to
        # completion deterministically, so both are normalized out
        # for them rather than spuriously refusing a resume).
        base = self.spec.base
        return {
            "workload": self.workload,
            "budget": self.budget if self._is_synthetic else None,
            "seed": self.seed if self._is_synthetic else None,
            "trace_config": {
                "rob_entries": base.rob_entries,
                "ifq_entries": base.ifq_entries,
            },
        }

    def _check_manifest(self) -> None:
        manifest_path = self.results_dir / MANIFEST_FILENAME
        manifest = self._manifest()
        if manifest_path.exists():
            try:
                existing = json.loads(manifest_path.read_text())
            except (OSError, json.JSONDecodeError):
                # Checkpoints self-validate via embedded provenance,
                # so a corrupt manifest can simply be rewritten.
                tmp = manifest_path.with_suffix(".tmp")
                tmp.write_text(json.dumps(manifest, sort_keys=True))
                os.replace(tmp, manifest_path)
                return
            if existing != manifest:
                raise SweepError(
                    f"results directory {self.results_dir} holds a "
                    f"different sweep ({existing}); use a fresh "
                    f"directory for {manifest}"
                )
        else:
            # Atomic, like the checkpoints: a kill mid-write must not
            # leave truncated JSON that bricks every future resume.
            tmp = manifest_path.with_suffix(".tmp")
            tmp.write_text(json.dumps(manifest, sort_keys=True))
            os.replace(tmp, manifest_path)

    def prepare_trace(self, predictor: PredictorConfig) -> _TraceInfo:
        """Generate the shared trace for one generation predictor, or
        reuse the persisted one.

        Generation streams straight into a segmented v2 file
        (:func:`~repro.workloads.tracegen.write_workload_trace` — the
        coordinator never holds the record list either); the sweep's
        provenance plus a kernel's entry PC land in the metadata blob,
        so a results directory is self-describing.  Generation ROB/IFQ
        parameters come from the base config.
        """
        self.results_dir.mkdir(parents=True, exist_ok=True)
        self._check_manifest()
        trace_path = self.results_dir / trace_filename(predictor)
        if trace_path.exists():
            try:
                # Header only: the coordinator never needs the records
                # decoded; each worker streams the payload itself (and
                # surfaces payload corruption then).
                header = read_trace_header(trace_path)
            except TraceFileError as error:
                raise SweepError(
                    f"persisted sweep trace {trace_path} is corrupt "
                    f"({error}); delete it (checkpoints were produced "
                    f"from it and must go too)"
                ) from error
            start_pc = header.metadata.get("start_pc")
            return _TraceInfo(trace_path, start_pc,
                              header.bits_per_instruction)
        # write_workload_trace is atomic (streams to a .part sibling,
        # renamed on success), so a kill mid-write leaves either no
        # trace or a complete one, never a truncated file that blocks
        # every future resume.
        written = write_workload_trace(
            self.workload, replace(self.spec.base, predictor=predictor),
            trace_path, budget=self.budget, seed=self.seed,
            extra={"generator": "sweep"},
        )
        return _TraceInfo(trace_path, written.start_pc,
                          written.trace_stats.bits_per_instruction)

    # -- checkpoints ---------------------------------------------------

    def _checkpoint_path(self, point: SweepPoint) -> Path:
        return self.results_dir / f"{point.key}.json"

    def _load_checkpoint(self, path: Path,
                         config_dict: dict) -> dict | None:
        """A validated checkpoint payload, or None to recompute."""
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("schema") != CHECKPOINT_SCHEMA:
            return None
        if payload.get("sweep") != self._manifest():
            return None
        if payload.get("config") != config_dict:
            return None
        if not isinstance(payload.get("stats"), dict):
            return None
        return payload

    # -- execution -----------------------------------------------------

    def run(self) -> SweepResult:
        """Expand, simulate (resuming from checkpoints), aggregate."""
        expansion = self.spec.expand()
        # One shared trace per distinct generation predictor in the
        # grid (usually exactly one; see module docstring).
        traces: dict[str, _TraceInfo] = {}
        for point in expansion:
            key = predictor_key(point.config.predictor)
            if key not in traces:
                traces[key] = self.prepare_trace(point.config.predictor)

        outcomes: dict[str, SweepOutcome] = {}
        pending: list[SweepPoint] = []
        for point in expansion:
            config_dict = config_to_dict(point.config)
            payload = self._load_checkpoint(
                self._checkpoint_path(point), config_dict)
            if payload is not None:
                outcomes[point.key] = self._outcome(
                    point, payload, from_checkpoint=True)
            else:
                pending.append(point)

        if pending:
            provenance = self._manifest()
            tasks = []
            for point in pending:
                trace = traces[predictor_key(point.config.predictor)]
                tasks.append(
                    (str(trace.path), config_to_dict(point.config),
                     str(self._checkpoint_path(point)), trace.start_pc,
                     provenance))

            def corrupt(error: TraceFileError) -> SweepError:
                # Workers decode the persisted payload; their
                # TraceFileError must surface with the same guidance
                # the header check gives, not as a raw traceback.
                return SweepError(
                    f"a persisted sweep trace in {self.results_dir} "
                    f"is corrupt ({error}); delete the results "
                    f"directory and rerun (its checkpoints were "
                    f"produced from that trace)"
                )

            if self.workers == 1:
                for point, task in zip(pending, tasks):
                    try:
                        payload = _simulate_point(*task)
                    except TraceFileError as error:
                        raise corrupt(error) from error
                    outcomes[point.key] = self._outcome(
                        point, payload, from_checkpoint=False)
            else:
                with ProcessPoolExecutor(
                        max_workers=self.workers) as pool:
                    futures = {
                        pool.submit(_simulate_point, *task): point
                        for point, task in zip(pending, tasks)
                    }
                    for future in as_completed(futures):
                        point = futures[future]
                        try:
                            payload = future.result()
                        except TraceFileError as error:
                            raise corrupt(error) from error
                        outcomes[point.key] = self._outcome(
                            point, payload, from_checkpoint=False)

        ordered = tuple(outcomes[point.key] for point in expansion)
        # Headline bits/instruction: the base predictor's trace when
        # it is part of the grid, else the first trace; the per-trace
        # map is in metadata.
        base_key = predictor_key(self.spec.base.predictor)
        headline = traces.get(base_key) or next(iter(traces.values()))
        return SweepResult(
            outcomes=ordered,
            workload=self.workload,
            budget=self.budget,
            seed=self.seed,
            trace_bits_per_instruction=headline.bits_per_instruction,
            metadata={"trace_bits_per_instruction_by_predictor": {
                key: info.bits_per_instruction
                for key, info in traces.items()}},
            skipped_invalid=expansion.skipped_invalid,
            skipped_duplicates=expansion.skipped_duplicates,
        )

    @staticmethod
    def _outcome(point: SweepPoint, payload: dict,
                 from_checkpoint: bool) -> SweepOutcome:
        return SweepOutcome(
            key=point.key,
            params=point.params,
            config=point.config,
            stats=stats_from_dict(payload["stats"]),
            from_checkpoint=from_checkpoint,
        )


def run_sweep(
    spec: SweepSpec,
    workload: str = "gzip",
    *,
    results_dir: str | Path,
    budget: int = 30_000,
    seed: int = 7,
    workers: int = 1,
) -> SweepResult:
    """One-call convenience wrapper around :class:`SweepRunner`."""
    runner = SweepRunner(spec, workload, results_dir=results_dir,
                         budget=budget, seed=seed, workers=workers)
    return runner.run()
