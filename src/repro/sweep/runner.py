"""The sweep scheduler: grid expansion → work units → backend → result.

The paper's primary usage mode is traces *"prepared off-line ... for
bulk simulations with varying design parameters"*.  This module is
that bulk mode's *scheduler*: each workload trace is generated (or
loaded) **once**, persisted through :mod:`repro.trace.fileio`, and
every design point of a :class:`~repro.sweep.spec.SweepSpec` becomes
one serializable :class:`~repro.exec.unit.WorkUnit` — a
``Simulation.from_spec`` dict over the shared trace plus a checkpoint
destination — handed to an :class:`~repro.exec.ExecutionBackend`.
*How* the units run is entirely the backend's business: in-process
(:class:`~repro.exec.SerialBackend`), fanned out over one host's
cores (:class:`~repro.exec.ProcessPoolBackend`, the historical
behavior), or drained by ``resim worker`` processes on any number of
hosts (:class:`~repro.exec.DirectoryQueueBackend`).

Durability: a work unit's result document **is** the design point's
checkpoint — written atomically to ``<results_dir>/<config-key>.json``
with the sweep's provenance manifest embedded, so a sweep killed
halfway resumes from its checkpoints instead of restarting, no matter
which backend (or which host) computed them.  Checkpoints are
validated on load; a corrupt or mismatched checkpoint is discarded
and recomputed, never trusted.

Determinism: the engine is a deterministic function of (config,
records) and every backend runs the same
:func:`~repro.exec.unit.execute_unit` on the same units, so all
backends produce bit-identical :class:`SimulationStatistics` (the
test suite checks serial vs. pool vs. directory queue).

Trace sharing: ReSim's wrong-path handling is trace-authoritative
(Section V.A) — the tagged blocks recorded at generation time *are*
the misprediction signal.  Sizing axes (ROB, LSQ, IFQ, width, FU
mixes, caches) therefore share one trace, exactly as in the paper's
off-line mode.  The **predictor** is different: sharing one trace
across predictor schemes would make every scheme score identically,
so the runner generates one trace per *distinct predictor* in the
grid (``trace-<predictor-key>.rtrc``), amortized across all other
axes.  Generation ROB/IFQ always come from the base config.

Memory: the whole pipeline is streaming.  The coordinator generates
each shared trace straight into a segmented v2 file
(:func:`~repro.workloads.tracegen.write_workload_trace`, one encoder
segment resident), and every executor replays it through a
:class:`~repro.trace.source.FileSource` (one decoded segment
resident) — no process ever materializes a full record list, so the
sweepable trace budget is bounded by disk, not by per-worker RAM.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from collections.abc import Callable, Sequence

from repro.bpred.unit import PredictorConfig
from repro.core.specialize import ENGINES
from repro.utils.registry import RegistryError
from repro.exec import (
    DEFAULT_REGIONS,
    DEFAULT_WARMUP_SEGMENTS,
    ExecutionBackend,
    ProcessPoolBackend,
    RegionPlan,
    RegionReducer,
    SerialBackend,
    ShardPlan,
    ShardReducer,
    UnitExecutionError,
    WorkUnit,
    load_unit_result,
    plan_regions,
    plan_shards,
    region_units,
    shard_units,
)
from repro.exec.unit import result_matches_unit
from repro.serialize import (
    canonical_digest,
    config_to_dict,
    stats_from_dict,
)
from repro.sweep.progress import SweepProgress
from repro.sweep.result import SweepOutcome, SweepResult
from repro.sweep.spec import SweepError, SweepPoint, SweepSpec
from repro.trace.analyze import ensure_profile
from repro.trace.fileio import (
    DEFAULT_SEGMENT_RECORDS,
    TraceFileError,
    read_trace_header,
)
from repro.workloads.profiles import SPECINT_PROFILES
from repro.workloads.tracegen import (
    UnknownWorkloadError,
    is_known_workload,
    write_workload_trace,
)

#: Checkpoint schema version; bump on incompatible layout changes.
#: Checkpoints are work-unit result documents, so this tracks
#: :data:`repro.exec.RESULT_SCHEMA`.
CHECKPOINT_SCHEMA = 1

#: Filename of the sweep manifest inside a results directory.
MANIFEST_FILENAME = "sweep.json"


def predictor_key(predictor: PredictorConfig) -> str:
    """Short stable identifier of one generation predictor."""
    return canonical_digest(asdict(predictor), length=12)


def trace_filename(predictor: PredictorConfig) -> str:
    """Filename of the shared trace generated with one predictor."""
    return f"trace-{predictor_key(predictor)}.rtrc"


def default_backend(workers: int) -> ExecutionBackend:
    """The backend ``workers=N`` historically meant: in-process for
    1, a process pool otherwise."""
    if workers < 1:
        raise SweepError(f"workers must be >= 1, got {workers}")
    if workers == 1:
        return SerialBackend()
    return ProcessPoolBackend(workers)


@dataclass(frozen=True)
class _TraceInfo:
    path: Path
    start_pc: int | None
    bits_per_instruction: float


class SweepRunner:
    """Evaluate design points against shared traces through a
    pluggable execution backend (see module docstring).

    Parameters
    ----------
    spec:
        The parameter grid (see :class:`~repro.sweep.spec.SweepSpec`).
    workload:
        A SPECINT profile name (synthetic generator) or an assembly
        kernel name (traced through the functional simulator).
    results_dir:
        Where the shared traces, the manifest, and per-point
        checkpoints live.  Reusing the directory resumes the sweep;
        mixing workloads/budgets/seeds in one directory is refused.
    budget:
        Instruction budget for synthetic workloads (kernels run to
        completion).
    seed:
        Synthetic-generator seed.
    workers:
        Shorthand for the default backend choice: ``1`` runs
        in-process (the serial reference path), ``N > 1`` fans out
        over a local process pool.  Ignored when ``backend`` is given.
    backend:
        Any :class:`~repro.exec.ExecutionBackend`; overrides
        ``workers``.
    progress:
        A :class:`~repro.sweep.progress.SweepProgress` sink for
        per-point completion events (``resim sweep --progress``).
    shards:
        Split every design point into this many segment-range shard
        units (``resim sweep --shards N``), fanned through the same
        backend and merged by a :class:`~repro.exec.ShardReducer` —
        intra-point parallelism for grids smaller than the worker
        pool.  Exact-sum counters of the merged result equal the
        monolithic run's; cycle-derived metrics are approximate (see
        :mod:`repro.exec.shard`).  Traces with fewer v2 segments than
        ``shards`` split as far as segment granularity allows.
    segment_records:
        Records per segment when this runner generates a trace —
        the shard planner's boundary granularity (a trace shorter
        than one segment cannot shard).
    sampling:
        ``"full"`` (default) replays every trace record per design
        point; ``"regions"`` estimates each point from weighted
        representative regions (``resim sweep --sample-regions``,
        see :mod:`repro.exec.regions`) — the per-point cost drops to
        the plan's coverage, the results become *estimates* (merged
        documents carry a ``"sampled"`` marker, the manifest records
        the sampling parameters so sampled and exact results never
        share a results directory).  Mutually exclusive with
        ``shards > 1``: sharding exists for exactness, sampling
        deliberately gives it up.
    regions / region_seed / region_warmup:
        Sampling-plan parameters (cluster count, k-means seed, warmup
        segments per representative); ignored under full replay.
    """

    def __init__(
        self,
        spec: SweepSpec,
        workload: str = "gzip",
        *,
        results_dir: str | Path,
        budget: int = 30_000,
        seed: int = 7,
        workers: int = 1,
        backend: ExecutionBackend | None = None,
        progress: SweepProgress | None = None,
        shards: int = 1,
        segment_records: int = DEFAULT_SEGMENT_RECORDS,
        engine: str = "reference",
        sampling: str = "full",
        regions: int = DEFAULT_REGIONS,
        region_seed: int = 0,
        region_warmup: int = DEFAULT_WARMUP_SEGMENTS,
    ) -> None:
        if backend is None:
            backend = default_backend(workers)
        if not is_known_workload(workload):
            raise SweepError(str(UnknownWorkloadError(workload)))
        if shards < 1:
            raise SweepError(f"shards must be >= 1, got {shards}")
        if segment_records < 1:
            raise SweepError(
                f"segment_records must be >= 1, got {segment_records}")
        if sampling not in ("full", "regions"):
            raise SweepError(
                f"sampling must be 'full' or 'regions', got "
                f"{sampling!r}")
        if sampling == "regions":
            if shards > 1:
                raise SweepError(
                    "shards and region sampling are mutually "
                    "exclusive: sharding exists for exact merges, "
                    "sampling estimates (drop one of --shards / "
                    "--sample-regions)")
            if regions < 1:
                raise SweepError(f"regions must be >= 1, got {regions}")
            if region_warmup < 0:
                raise SweepError(
                    f"region_warmup must be >= 0, got {region_warmup}")
        try:
            ENGINES.get(engine)
        except RegistryError as error:
            raise SweepError(str(error)) from None
        self._is_synthetic = workload in SPECINT_PROFILES
        self.spec = spec
        self.workload = workload
        self.engine = engine
        self.results_dir = Path(results_dir)
        self.budget = budget
        self.seed = seed
        self.workers = workers
        self.backend = backend
        self.progress = progress if progress is not None \
            else SweepProgress()
        self.shards = shards
        self.segment_records = segment_records
        self.sampling = sampling
        self.regions = regions
        self.region_seed = region_seed
        self.region_warmup = region_warmup
        self._traces: dict[str, _TraceInfo] = {}
        self._plans: dict[str, ShardPlan] = {}
        self._region_plans: dict[str, RegionPlan] = {}

    # -- trace management ---------------------------------------------

    def _manifest(self) -> dict:
        # Includes every parameter the shared traces' content depends
        # on.  Predictors are NOT pinned here — each distinct
        # predictor gets its own trace file keyed by predictor_key —
        # but the generation ROB/IFQ come from the base config, and
        # budget/seed shape synthetic workloads (kernels run to
        # completion deterministically, so both are normalized out
        # for them rather than spuriously refusing a resume).
        base = self.spec.base
        manifest = {
            "workload": self.workload,
            "budget": self.budget if self._is_synthetic else None,
            "seed": self.seed if self._is_synthetic else None,
            "trace_config": {
                "rob_entries": base.rob_entries,
                "ifq_entries": base.ifq_entries,
            },
        }
        # Only sampled sweeps record a sampling entry: full-replay
        # manifests keep their historical shape (old results
        # directories stay resumable), and a sampled directory can
        # never be resumed as an exact one — or under different
        # sampling parameters — because the manifests differ.
        if self.sampling == "regions":
            manifest["sampling"] = {
                "mode": "regions",
                "regions": self.regions,
                "seed": self.region_seed,
                "warmup_segments": self.region_warmup,
            }
        return manifest

    def _check_manifest(self) -> None:
        manifest_path = self.results_dir / MANIFEST_FILENAME
        manifest = self._manifest()
        if manifest_path.exists():
            try:
                existing = json.loads(manifest_path.read_text())
            except (OSError, json.JSONDecodeError):
                # Checkpoints self-validate via embedded provenance,
                # so a corrupt manifest can simply be rewritten.
                tmp = manifest_path.with_suffix(".tmp")
                tmp.write_text(json.dumps(manifest, sort_keys=True))
                os.replace(tmp, manifest_path)
                return
            if existing != manifest:
                raise SweepError(
                    f"results directory {self.results_dir} holds a "
                    f"different sweep ({existing}); use a fresh "
                    f"directory for {manifest}"
                )
        else:
            # Atomic, like the checkpoints: a kill mid-write must not
            # leave truncated JSON that bricks every future resume.
            tmp = manifest_path.with_suffix(".tmp")
            tmp.write_text(json.dumps(manifest, sort_keys=True))
            os.replace(tmp, manifest_path)

    def prepare_trace(self, predictor: PredictorConfig) -> _TraceInfo:
        """Generate the shared trace for one generation predictor, or
        reuse the persisted one.

        Generation streams straight into a segmented v2 file
        (:func:`~repro.workloads.tracegen.write_workload_trace` — the
        coordinator never holds the record list either); the sweep's
        provenance plus a kernel's entry PC land in the metadata blob,
        so a results directory is self-describing.  Generation ROB/IFQ
        parameters come from the base config.
        """
        self.results_dir.mkdir(parents=True, exist_ok=True)
        self._check_manifest()
        trace_path = self.results_dir / trace_filename(predictor)
        if trace_path.exists():
            try:
                # Header only: the coordinator never needs the records
                # decoded; each executor streams the payload itself
                # (and surfaces payload corruption then).
                header = read_trace_header(trace_path)
            except TraceFileError as error:
                raise SweepError(
                    f"persisted sweep trace {trace_path} is corrupt "
                    f"({error}); delete it (checkpoints were produced "
                    f"from it and must go too)"
                ) from error
            start_pc = header.metadata.get("start_pc")
            return _TraceInfo(trace_path, start_pc,
                              header.bits_per_instruction)
        # write_workload_trace is atomic (streams to a .part sibling,
        # renamed on success), so a kill mid-write leaves either no
        # trace or a complete one, never a truncated file that blocks
        # every future resume.
        written = write_workload_trace(
            self.workload, replace(self.spec.base, predictor=predictor),
            trace_path, budget=self.budget, seed=self.seed,
            segment_records=self.segment_records,
            extra={"generator": "sweep"},
        )
        return _TraceInfo(trace_path, written.start_pc,
                          written.trace_stats.bits_per_instruction)

    def _trace_for(self, predictor: PredictorConfig) -> _TraceInfo:
        """Memoizing wrapper so one sweep/search prepares each
        distinct predictor's trace exactly once."""
        key = predictor_key(predictor)
        if key not in self._traces:
            self._traces[key] = self.prepare_trace(predictor)
        return self._traces[key]

    def trace_summary(self) -> tuple[float, dict[str, float]]:
        """Bits/instruction of the traces prepared so far, for result
        assembly: ``(headline, per-predictor-key map)``.  The
        headline is the base predictor's trace when it is part of the
        grid, else the first trace prepared; the map goes into result
        metadata.  Shared by sweep and search result construction.
        """
        if not self._traces:
            raise SweepError("no design points evaluated yet")
        base_key = predictor_key(self.spec.base.predictor)
        headline = self._traces.get(base_key) \
            or next(iter(self._traces.values()))
        return headline.bits_per_instruction, {
            key: info.bits_per_instruction
            for key, info in self._traces.items()}

    # -- checkpoints ---------------------------------------------------

    def _checkpoint_path(self, point: SweepPoint) -> Path:
        return self.results_dir / f"{point.key}.json"

    def _load_checkpoint(self, path: Path,
                         config_dict: dict) -> dict | None:
        """A validated checkpoint payload, or None to recompute."""
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("schema") != CHECKPOINT_SCHEMA:
            return None
        if payload.get("sweep") != self._manifest():
            return None
        if payload.get("config") != config_dict:
            return None
        if not isinstance(payload.get("stats"), dict):
            return None
        return payload

    # -- sharding ------------------------------------------------------

    def _plan_for(self, trace: _TraceInfo) -> ShardPlan:
        """Memoizing shard planner: one trace file is probed (and its
        clean boundaries found) once per runner, shared by every
        design point simulated over it."""
        key = str(trace.path)
        if key not in self._plans:
            self._plans[key] = plan_shards(trace.path, self.shards)
        return self._plans[key]

    # -- region sampling -----------------------------------------------

    def _region_plan_for(self, trace: _TraceInfo) -> RegionPlan:
        """Memoizing region planner: one trace is profiled (reusing a
        digest-fresh ``.rprof`` sidecar when present) and clustered
        once per runner, shared by every design point simulated over
        it — the plan depends only on the trace, not the config."""
        key = str(trace.path)
        if key not in self._region_plans:
            profile = ensure_profile(trace.path)
            self._region_plans[key] = plan_regions(
                trace.path, profile, regions=self.regions,
                seed=self.region_seed,
                warmup_segments=self.region_warmup)
        return self._region_plans[key]

    # -- unit building -------------------------------------------------

    def _unit_for(self, point: SweepPoint, trace: _TraceInfo,
                  provenance: dict) -> WorkUnit:
        """One design point as a serializable work unit.

        The unit's spec reproduces exactly what the pre-backend worker
        hand-wired: stream the shared trace, simulate under the
        point's config, start at the trace's recorded entry PC.  The
        provenance manifest rides in the tags, which is what makes
        the unit's result document a valid, self-describing sweep
        checkpoint (even if ``sweep.json`` is deleted, results
        computed under different workload/budget/seed parameters
        cannot be revived as this sweep's).
        """
        return WorkUnit.for_trace(
            point.key,
            trace.path.resolve(),
            config_to_dict(point.config),
            self._checkpoint_path(point).resolve(),
            start_pc=trace.start_pc,
            tags={"sweep": provenance},
            engine=self.engine,
        )

    # -- execution -----------------------------------------------------

    def evaluate(
        self,
        points: Sequence[SweepPoint],
        *,
        on_outcome: Callable[[SweepOutcome], None] | None = None,
    ) -> list[SweepOutcome]:
        """Evaluate design points (resuming from checkpoints), in
        ``points`` order.

        This is the scheduler core the grid sweep and the adaptive
        search strategies share: load-or-build each point's
        checkpoint, hand the missing ones to the backend as work
        units — one per point, or one per shard when ``shards > 1``,
        merged back into a point checkpoint as the last shard lands —
        and emit progress events in true completion order.
        """
        provenance = self._manifest() if points else {}
        outcomes: dict[str, SweepOutcome] = {}
        units: list[WorkUnit] = []
        by_id: dict[str, SweepPoint] = {}
        reducers: dict[str, ShardReducer | RegionReducer] = {}
        shard_point: dict[str, str] = {}  # split unit id -> point key

        def finish(point: SweepPoint, payload: dict,
                   from_checkpoint: bool) -> None:
            outcome = self._outcome(point, payload, from_checkpoint)
            outcomes[point.key] = outcome
            self.progress.point(outcome)
            if on_outcome is not None:
                on_outcome(outcome)

        for point in points:
            if point.key in outcomes or point.key in by_id:
                raise SweepError(
                    f"duplicate design point {point.key} "
                    f"({point.label}) in one evaluation batch"
                )
            trace = self._trace_for(point.config.predictor)
            config_dict = config_to_dict(point.config)
            payload = self._load_checkpoint(
                self._checkpoint_path(point), config_dict)
            if payload is not None:
                finish(point, payload, from_checkpoint=True)
                continue
            by_id[point.key] = point
            base_unit = self._unit_for(point, trace, provenance)
            reducer: ShardReducer | RegionReducer
            if self.sampling == "regions":
                # Sampled: every point runs as region units — even a
                # one-region plan stays an estimate (its checkpoint
                # carries the "sampled" marker), never a full replay.
                region_plan = self._region_plan_for(trace)
                reducer = RegionReducer(base_unit, region_plan)
                split = region_units(base_unit, region_plan)
            else:
                plan = self._plan_for(trace) if self.shards > 1 \
                    else None
                if plan is None or plan.shards == 1:
                    # Monolithic (or unsplittable trace):
                    # bit-identical to the pre-shard path, including
                    # the unit's identity.
                    units.append(base_unit)
                    continue
                reducer = ShardReducer(base_unit, plan)
                split = shard_units(base_unit, plan)
            # Split (sharded or sampled): per-slice results are
            # checkpoints too — reuse the ones a previous
            # (interrupted) run already computed and submit only the
            # missing slices.
            pending = []
            for shard_unit in split:
                existing = load_unit_result(shard_unit.result_path)
                if existing is not None and "error" not in existing \
                        and result_matches_unit(existing, shard_unit):
                    reducer.add(existing)
                else:
                    pending.append(shard_unit)
            if not pending:
                finish(point, reducer.write(), from_checkpoint=True)
                del by_id[point.key]
                continue
            reducers[point.key] = reducer
            for shard_unit in pending:
                shard_point[shard_unit.unit_id] = point.key
                units.append(shard_unit)

        if units:
            def collect(unit: WorkUnit, payload: dict) -> None:
                if "error" in payload:
                    error = payload["error"]
                    self.progress.unit_failed(
                        unit.unit_id,
                        f"{error.get('type')}: {error.get('message')}")
                    return
                point_key = shard_point.get(unit.unit_id)
                if point_key is None:
                    finish(by_id[unit.unit_id], payload,
                           from_checkpoint=False)
                    return
                reducer = reducers[point_key]
                reducer.add(payload)
                if reducer.complete:
                    # The merged document lands at the monolithic
                    # checkpoint path (atomically), so the point
                    # resumes like any other from here on.
                    finish(by_id[point_key], reducer.write(),
                           from_checkpoint=False)

            def corrupt(error: Exception) -> SweepError:
                # Executors decode the persisted trace payload; their
                # TraceFileError must surface with the same guidance
                # the header check gives, not as a raw traceback.
                return SweepError(
                    f"a persisted sweep trace in {self.results_dir} "
                    f"is corrupt ({error}); delete the results "
                    f"directory and rerun (its checkpoints were "
                    f"produced from that trace)"
                )

            try:
                self.backend.run_units(units, on_result=collect)
            except TraceFileError as error:
                raise corrupt(error) from error
            except UnitExecutionError as error:
                if error.kind == "TraceFileError":
                    raise corrupt(error.message) from error
                raise SweepError(str(error)) from error

        return [outcomes[point.key] for point in points]

    def run(self) -> SweepResult:
        """Expand, evaluate (resuming from checkpoints), aggregate."""
        expansion = self.spec.expand()
        self.progress.start(len(expansion), label="sweep")
        ordered = tuple(self.evaluate(expansion.points))
        self.progress.finish()
        headline, by_predictor = self.trace_summary()
        return SweepResult(
            outcomes=ordered,
            workload=self.workload,
            budget=self.budget,
            seed=self.seed,
            trace_bits_per_instruction=headline,
            metadata={"trace_bits_per_instruction_by_predictor":
                      by_predictor},
            skipped_invalid=expansion.skipped_invalid,
            skipped_duplicates=expansion.skipped_duplicates,
        )

    @staticmethod
    def _outcome(point: SweepPoint, payload: dict,
                 from_checkpoint: bool) -> SweepOutcome:
        return SweepOutcome(
            key=point.key,
            params=point.params,
            config=point.config,
            stats=stats_from_dict(payload["stats"]),
            from_checkpoint=from_checkpoint,
        )


def run_sweep(
    spec: SweepSpec,
    workload: str = "gzip",
    *,
    results_dir: str | Path,
    budget: int = 30_000,
    seed: int = 7,
    workers: int = 1,
    backend: ExecutionBackend | None = None,
    progress: SweepProgress | None = None,
    shards: int = 1,
    segment_records: int = DEFAULT_SEGMENT_RECORDS,
    engine: str = "reference",
    sampling: str = "full",
    regions: int = DEFAULT_REGIONS,
    region_seed: int = 0,
    region_warmup: int = DEFAULT_WARMUP_SEGMENTS,
) -> SweepResult:
    """One-call convenience wrapper around :class:`SweepRunner`."""
    runner = SweepRunner(spec, workload, results_dir=results_dir,
                         budget=budget, seed=seed, workers=workers,
                         backend=backend, progress=progress,
                         shards=shards, segment_records=segment_records,
                         engine=engine, sampling=sampling,
                         regions=regions, region_seed=region_seed,
                         region_warmup=region_warmup)
    return runner.run()
