"""Sweep result aggregation: sorting, filtering, tables, export.

A :class:`SweepResult` holds one :class:`SweepOutcome` per design
point.  Outcomes wrap the full :class:`SimulationStatistics` (the same
object the serial engine path produces), so anything derivable serially
— IPC, misprediction rate, FPGA-projected MIPS via
:class:`~repro.perf.throughput.ThroughputModel` — is derivable from a
checkpointed sweep as well.

Interop with the paper-table machinery:

* :meth:`SweepResult.comparison_entries` turns design points into
  :class:`~repro.perf.comparison.SimulatorEntry` rows, so a sweep can
  be rendered next to the published Table 2 simulators with
  :func:`repro.perf.comparison.render_table`;
* :func:`repro.perf.tables.sweep_table` renders a sweep the way the
  other paper tables are rendered.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Callable, Sequence

from repro.core.config import ProcessorConfig
from repro.core.engine import SimulationResult
from repro.core.stats import SimulationStatistics
from repro.fpga.device import FpgaDevice
from repro.perf.comparison import SimulatorEntry
from repro.perf.throughput import ThroughputModel
from repro.serialize import config_to_dict, stats_to_dict
from repro.sweep.spec import format_params, value_label


@dataclass(frozen=True)
class SweepOutcome:
    """Everything measured for one design point of a sweep."""

    key: str
    params: tuple[tuple[str, object], ...]
    config: ProcessorConfig
    stats: SimulationStatistics
    from_checkpoint: bool = False

    @property
    def result(self) -> SimulationResult:
        """The outcome as the engine's own result type."""
        return SimulationResult(config=self.config, stats=self.stats)

    @property
    def ipc(self) -> float:
        return self.stats.ipc

    @property
    def major_cycles(self) -> int:
        return int(self.stats.major_cycles)

    @property
    def misprediction_rate(self) -> float:
        return self.stats.misprediction_rate

    def mips(self, device: FpgaDevice) -> float:
        """FPGA-projected simulation speed on one device."""
        return ThroughputModel(device).report(self.result).mips

    def param(self, name: str) -> object:
        """Value of one swept axis for this point."""
        for axis, value in self.params:
            if axis == name:
                return value
        raise KeyError(f"axis {name!r} was not swept")

    @property
    def label(self) -> str:
        """Compact swept coordinates (same form as
        :attr:`SweepPoint.label`)."""
        return format_params(self.params)


#: Sort keys accepted by name (CLI-friendly): metric plus whether
#: *larger* values are better (controls the best-first direction).
#: Callables work too and are treated as larger-is-better.
SORT_KEYS: dict[str, tuple[Callable[[SweepOutcome], float], bool]] = {
    "ipc": (lambda o: o.ipc, True),
    "cycles": (lambda o: o.major_cycles, False),
    "mispredictions": (lambda o: o.misprediction_rate, False),
}


@dataclass(frozen=True)
class SweepResult:
    """All outcomes of one sweep plus its provenance."""

    outcomes: tuple[SweepOutcome, ...]
    workload: str
    budget: int
    seed: int
    trace_bits_per_instruction: float = 0.0
    skipped_invalid: int = 0
    skipped_duplicates: int = 0
    metadata: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self):
        return iter(self.outcomes)

    @property
    def resumed_count(self) -> int:
        """Design points satisfied from checkpoints, not simulation."""
        return sum(1 for o in self.outcomes if o.from_checkpoint)

    # -- selection -----------------------------------------------------

    def sorted_by(self, key: str | Callable[[SweepOutcome], float] = "ipc",
                  reverse: bool | None = None) -> SweepResult:
        """Outcomes reordered best-first by a named or callable key.

        Named keys know their own direction (higher IPC is better,
        fewer cycles/mispredictions are better); ``reverse``
        overrides it.  Callable keys default to larger-is-better.
        """
        if isinstance(key, str):
            try:
                key, larger_is_better = SORT_KEYS[key]
            except KeyError:
                raise KeyError(
                    f"unknown sort key {key!r}; choose from "
                    f"{', '.join(SORT_KEYS)} or pass a callable"
                ) from None
        else:
            larger_is_better = True
        if reverse is None:
            reverse = larger_is_better
        ordered = tuple(sorted(self.outcomes, key=key, reverse=reverse))
        return self._with_outcomes(ordered)

    def filter(self, predicate: Callable[[SweepOutcome], bool] | None = None,
               **params: object) -> SweepResult:
        """Keep outcomes matching a predicate and/or axis values.

        >>> result.filter(rob_entries=32)        # doctest: +SKIP
        >>> result.filter(lambda o: o.ipc > 1.5)  # doctest: +SKIP
        """
        def matches(outcome: SweepOutcome) -> bool:
            if predicate is not None and not predicate(outcome):
                return False
            return all(outcome.param(name) == value
                       for name, value in params.items())
        kept = tuple(o for o in self.outcomes if matches(o))
        return self._with_outcomes(kept)

    def top(self, count: int,
            key: str | Callable[[SweepOutcome], float] = "ipc"
            ) -> SweepResult:
        """The best ``count`` outcomes under a sort key."""
        ordered = self.sorted_by(key)
        return ordered._with_outcomes(ordered.outcomes[:count])

    def best(self, key: str | Callable[[SweepOutcome], float] = "ipc"
             ) -> SweepOutcome:
        """The single best outcome under a sort key."""
        if not self.outcomes:
            raise ValueError("empty sweep result")
        return self.sorted_by(key).outcomes[0]

    def _with_outcomes(self, outcomes: tuple[SweepOutcome, ...]
                       ) -> SweepResult:
        return SweepResult(
            outcomes=outcomes, workload=self.workload, budget=self.budget,
            seed=self.seed,
            trace_bits_per_instruction=self.trace_bits_per_instruction,
            skipped_invalid=self.skipped_invalid,
            skipped_duplicates=self.skipped_duplicates,
            metadata=self.metadata,
        )

    # -- rendering -----------------------------------------------------

    def table(self, devices: Sequence[FpgaDevice] = ()) -> str:
        """ASCII table: swept coordinates plus headline metrics."""
        axes = [name for name, _ in self.outcomes[0].params] \
            if self.outcomes else []
        headers = (axes + ["IPC", "cycles", "mispred"]
                   + [f"{device.name} MIPS" for device in devices])
        rows = []
        for outcome in self.outcomes:
            row = [value_label(value) for _, value in outcome.params]
            row += [f"{outcome.ipc:.3f}", str(outcome.major_cycles),
                    f"{outcome.misprediction_rate:.4f}"]
            row += [f"{outcome.mips(device):.2f}" for device in devices]
            rows.append(row)
        widths = [max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
                  for i, h in enumerate(headers)]
        lines = [" ".join(h.rjust(widths[i])
                          for i, h in enumerate(headers)),
                 "-" * (sum(widths) + len(widths) - 1)]
        for row in rows:
            lines.append(" ".join(cell.rjust(widths[i])
                                  for i, cell in enumerate(row)))
        return "\n".join(lines)

    def comparison_entries(self, device: FpgaDevice
                           ) -> list[SimulatorEntry]:
        """Design points as Table 2 rows (for
        :func:`repro.perf.comparison.render_table`)."""
        return [
            SimulatorEntry(
                name=f"ReSim [{outcome.label}]",
                isa="PISA (trace-driven)",
                mips=outcome.mips(device),
                category="resim",
                source=f"swept on {self.workload}, "
                       f"budget {self.budget}, seed {self.seed}",
            )
            for outcome in self.outcomes
        ]

    # -- export --------------------------------------------------------

    def to_json(self, path: str | Path | None = None) -> str:
        """Full-fidelity JSON export (config + statistics per point)."""
        document = {
            "workload": self.workload,
            "budget": self.budget,
            "seed": self.seed,
            "trace_bits_per_instruction": self.trace_bits_per_instruction,
            "skipped_invalid": self.skipped_invalid,
            "skipped_duplicates": self.skipped_duplicates,
            "outcomes": [
                {
                    "key": outcome.key,
                    "params": {name: _jsonable(value)
                               for name, value in outcome.params},
                    "config": config_to_dict(outcome.config),
                    "stats": stats_to_dict(outcome.stats),
                    "ipc": outcome.ipc,
                    "from_checkpoint": outcome.from_checkpoint,
                }
                for outcome in self.outcomes
            ],
        }
        text = json.dumps(document, indent=2, sort_keys=True)
        if path is not None:
            Path(path).write_text(text)
        return text

    def to_csv(self, path: str | Path,
               devices: Sequence[FpgaDevice] = ()) -> None:
        """Spreadsheet-friendly export: one row per design point."""
        axes = [name for name, _ in self.outcomes[0].params] \
            if self.outcomes else []
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(
                ["key"] + axes
                + ["ipc", "major_cycles", "committed_instructions",
                   "misprediction_rate"]
                + [f"mips_{device.name}" for device in devices])
            for outcome in self.outcomes:
                writer.writerow(
                    [outcome.key]
                    + [value_label(value) for _, value in outcome.params]
                    + [f"{outcome.ipc:.6f}", outcome.major_cycles,
                       int(outcome.stats.committed_instructions),
                       f"{outcome.misprediction_rate:.6f}"]
                    + [f"{outcome.mips(device):.4f}"
                       for device in devices])


def _jsonable(value: object) -> object:
    from dataclasses import asdict, is_dataclass
    if is_dataclass(value) and not isinstance(value, type):
        return asdict(value)
    return value
