"""Design-space sweep specification.

A :class:`SweepSpec` is a base :class:`ProcessorConfig` plus a mapping
of *axes* — config field names to the list of values to try.  It
expands the cross product into concrete design points, with the three
chores every hand-rolled sweep loop gets wrong eventually:

* **validation** — unknown axis names and empty/scalar value lists are
  rejected up front (:class:`SweepError`), instead of exploding deep
  inside ``dataclasses.replace``;
* **constraint filtering** — combinations that violate the processor's
  own invariants (e.g. a reorder buffer smaller than the machine
  width) are skipped and counted, not fatal;
* **deduplication** — combinations that produce an identical
  :class:`ProcessorConfig` (a value repeated by a script bug, or axes
  whose overrides coincide) collapse to one design point, so no
  configuration is simulated twice.  Equality is config-level: two
  *distinct* configs whose difference happens not to affect the
  simulated machine (e.g. bimodal predictors differing only in
  ``l2_size``) are still separate points.

Convenience coercions keep specs terse: the ``predictor`` axis accepts
scheme-name strings or kwargs dicts next to full
:class:`PredictorConfig` objects, and the ``icache``/``dcache`` axes
accept kwargs dicts next to :class:`CacheConfig` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from itertools import product
from collections.abc import Iterable, Mapping, Sequence

from repro.bpred.unit import PREDICTORS, PredictorConfig
from repro.cache.cache import CacheConfig
from repro.core.config import PAPER_4WIDE_PERFECT, ProcessorConfig
from repro.serialize import config_key

_CONFIG_FIELDS = frozenset(spec.name for spec in fields(ProcessorConfig))


class SweepError(ValueError):
    """Raised on malformed sweep specifications."""


@dataclass(frozen=True)
class SweepPoint:
    """One expanded design point.

    ``params`` records the axis values that produced the point (in
    axis declaration order) so result tables can show the swept
    coordinates instead of a full config dump.
    """

    config: ProcessorConfig
    params: tuple[tuple[str, object], ...]

    @property
    def key(self) -> str:
        """Stable checkpoint/filename identifier (see
        :func:`repro.serialize.config_key`)."""
        return config_key(self.config)

    @property
    def label(self) -> str:
        """Compact human-readable coordinates, e.g.
        ``rob=32 width=4 predictor=gshare``."""
        return format_params(self.params)


def format_params(params: tuple[tuple[str, object], ...]) -> str:
    """One-line rendering of swept coordinates (shared by
    :class:`SweepPoint` and :class:`~repro.sweep.result.SweepOutcome`)."""
    return " ".join(f"{name}={value_label(value)}"
                    for name, value in params)


def value_label(value: object) -> str:
    if isinstance(value, PredictorConfig):
        return value.scheme
    if isinstance(value, CacheConfig):
        return f"{value.size_bytes // 1024}KB/{value.assoc}w"
    return str(value)


def _coerce(name: str, value: object) -> object:
    """Per-axis convenience coercions (see module docstring).

    Invalid values — an unknown predictor scheme, malformed cache
    geometry, a kwargs typo — surface as :class:`SweepError` here, at
    expansion time, not as a raw ``ValueError``/``TypeError`` minutes
    into a simulation.
    """
    if name == "predictor":
        if isinstance(value, str):
            value = PredictorConfig(scheme=value)
        elif isinstance(value, Mapping):
            try:
                value = PredictorConfig(**value)
            except TypeError as error:
                raise SweepError(
                    f"bad predictor axis value: {error}") from None
        elif not isinstance(value, PredictorConfig):
            raise SweepError(
                f"predictor axis values must be scheme strings, kwargs "
                f"dicts, or PredictorConfig, got {value!r}"
            )
        if value.scheme not in PREDICTORS:
            # Registry membership, not the import-time tuple snapshot:
            # schemes registered after import are valid axis values.
            raise SweepError(
                f"unknown predictor scheme {value.scheme!r}; choose "
                f"from {', '.join(PREDICTORS)}"
            )
        return value
    if name in ("icache", "dcache"):
        if isinstance(value, Mapping):
            try:
                return CacheConfig(
                    name="il1" if name == "icache" else "dl1", **value)
            except (TypeError, ValueError) as error:
                raise SweepError(
                    f"bad {name} axis value: {error}") from None
        if not isinstance(value, CacheConfig):
            raise SweepError(
                f"{name} axis values must be kwargs dicts or "
                f"CacheConfig, got {value!r}"
            )
        return value
    return value


@dataclass(frozen=True)
class Expansion:
    """Outcome of expanding a spec: the points plus what was dropped."""

    points: tuple[SweepPoint, ...]
    skipped_invalid: int
    skipped_duplicates: int

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)


@dataclass(frozen=True)
class SweepSpec:
    """A parameter grid over :class:`ProcessorConfig`.

    >>> spec = SweepSpec(axes={"rob_entries": (8, 16),
    ...                        "predictor": ("twolevel", "bimodal")})
    >>> [p.label for p in spec.expand()][:2]
    ['rob_entries=8 predictor=twolevel', 'rob_entries=8 predictor=bimodal']
    """

    axes: Mapping[str, Sequence[object]]
    base: ProcessorConfig = PAPER_4WIDE_PERFECT

    def __post_init__(self) -> None:
        if not self.axes:
            raise SweepError("a sweep needs at least one axis")
        # Materialize every axis exactly once: validation must not
        # consume one-shot iterables (generators) that expand() would
        # then find exhausted.
        normalized: dict[str, tuple[object, ...]] = {}
        for name, values in self.axes.items():
            if name not in _CONFIG_FIELDS:
                valid = ", ".join(sorted(_CONFIG_FIELDS))
                raise SweepError(
                    f"unknown sweep axis {name!r}; valid axes: {valid}"
                )
            if isinstance(values, (str, bytes)) or not isinstance(
                    values, Iterable):
                raise SweepError(
                    f"axis {name!r} needs a sequence of values, got "
                    f"{values!r}"
                )
            materialized = tuple(values)
            if not materialized:
                raise SweepError(f"axis {name!r} has no values")
            normalized[name] = materialized
        object.__setattr__(self, "axes", normalized)

    @property
    def grid_size(self) -> int:
        """Size of the raw cross product (before filtering/dedup)."""
        size = 1
        for values in self.axes.values():
            size *= len(values)
        return size

    def coerced_axes(self) -> dict[str, tuple[object, ...]]:
        """Axis values with the per-axis convenience coercions applied
        (scheme strings to :class:`PredictorConfig` and so on) — the
        form adaptive search strategies index into."""
        return {name: tuple(_coerce(name, value) for value in values)
                for name, values in self.axes.items()}

    def make_point(self, values: Mapping[str, object]) -> SweepPoint:
        """One design point from explicit per-axis values.

        The point-by-point counterpart of :meth:`expand`, used by the
        search strategies (:mod:`repro.sweep.search`): ``values`` must
        cover every axis of the spec; coercions and validation match
        expansion exactly, so a point made here is indistinguishable
        from the same coordinates found in the full grid.  Raises
        :class:`SweepError` for missing axes, mistyped values, and
        combinations the processor's invariants reject.
        """
        missing = set(self.axes) - set(values)
        if missing:
            raise SweepError(
                f"make_point needs a value for every axis; missing "
                f"{', '.join(sorted(missing))}"
            )
        extra = set(values) - set(self.axes)
        if extra:
            raise SweepError(
                f"make_point got values for axes not in this spec: "
                f"{', '.join(sorted(extra))}"
            )
        overrides = {name: _coerce(name, values[name])
                     for name in self.axes}
        try:
            config = replace(self.base, **overrides)
        except ValueError as error:
            raise SweepError(
                f"design point {overrides!r} violates processor "
                f"constraints: {error}"
            ) from None
        except TypeError as error:
            raise SweepError(
                f"bad axis value in {overrides!r}: {error}"
            ) from None
        return SweepPoint(
            config=config,
            params=tuple((name, overrides[name]) for name in self.axes))

    def expand(self) -> Expansion:
        """Expand the grid into validated, deduplicated design points.

        Points appear in cross-product order (last axis varies
        fastest), which keeps result tables grouped the way the spec
        reads.
        """
        names = list(self.axes)
        value_lists = [
            [_coerce(name, value) for value in self.axes[name]]
            for name in names
        ]
        points: list[SweepPoint] = []
        seen: set[ProcessorConfig] = set()
        skipped_invalid = 0
        skipped_duplicates = 0
        for combo in product(*value_lists):
            overrides = dict(zip(names, combo, strict=True))
            try:
                config = replace(self.base, **overrides)
            except ValueError:
                skipped_invalid += 1
                continue
            except TypeError as error:
                # A mistyped value (e.g. "8" for rob_entries) is a
                # spec bug, not a constraint violation — fail loudly.
                raise SweepError(
                    f"bad axis value in {overrides!r}: {error}"
                ) from None
            if config in seen:
                skipped_duplicates += 1
                continue
            seen.add(config)
            points.append(SweepPoint(config=config,
                                     params=tuple(zip(names, combo, strict=True))))
        if not points:
            raise SweepError(
                "sweep expansion produced no valid design points "
                f"({skipped_invalid} violated processor constraints)"
            )
        return Expansion(points=tuple(points),
                         skipped_invalid=skipped_invalid,
                         skipped_duplicates=skipped_duplicates)
