"""Design-space sweeps: bulk simulation of one trace across many
configurations.

The paper positions ReSim for traces *"prepared off-line ... for bulk
simulations with varying design parameters"*; this package is that
workflow as a subsystem:

* :class:`~repro.sweep.spec.SweepSpec` — expand a parameter grid into
  validated, deduplicated :class:`ProcessorConfig` design points;
* :class:`~repro.sweep.runner.SweepRunner` — generate/persist the
  workload trace once, turn design points into serializable work
  units, run them through any :class:`~repro.exec.ExecutionBackend`
  (in-process, process pool, or a multi-host directory queue drained
  by ``resim worker``), checkpoint every finished point so
  interrupted sweeps resume;
* :class:`~repro.sweep.search.SearchRunner` — adaptive search
  (:class:`GridSearch` / :class:`RandomSearch` / :class:`HillClimb`)
  that evaluates points one batch at a time through the same
  backends and checkpoints;
* :class:`~repro.sweep.result.SweepResult` — sort/filter/tabulate the
  outcomes and export them as JSON/CSV or Table 2-style comparison
  rows.

Quick start
-----------
>>> from repro.sweep import SweepSpec, run_sweep
>>> spec = SweepSpec(axes={"rob_entries": (8, 16, 32)})
>>> result = run_sweep(spec, "gzip", results_dir="sweep-out",
...                    budget=5_000, workers=4)   # doctest: +SKIP
>>> print(result.sorted_by("ipc").table())        # doctest: +SKIP

Adaptive search over the same axes:

>>> from repro.sweep import HillClimb, run_search
>>> best = run_search(HillClimb(spec), "gzip",
...                   results_dir="sweep-out").best  # doctest: +SKIP
"""

from repro.serialize import (
    config_from_dict,
    config_key,
    config_to_dict,
    stats_from_dict,
    stats_to_dict,
)
from repro.sweep.progress import ProgressPrinter, SweepProgress
from repro.sweep.result import SweepOutcome, SweepResult
from repro.sweep.runner import SweepRunner, default_backend, run_sweep
from repro.sweep.search import (
    SEARCHES,
    GridSearch,
    HillClimb,
    RandomSearch,
    SearchError,
    SearchResult,
    SearchRunner,
    SearchStrategy,
    run_search,
)
from repro.sweep.spec import Expansion, SweepError, SweepPoint, SweepSpec

__all__ = [
    "Expansion",
    "GridSearch",
    "HillClimb",
    "ProgressPrinter",
    "RandomSearch",
    "SEARCHES",
    "SearchError",
    "SearchResult",
    "SearchRunner",
    "SearchStrategy",
    "SweepError",
    "SweepOutcome",
    "SweepPoint",
    "SweepProgress",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "config_from_dict",
    "config_key",
    "config_to_dict",
    "default_backend",
    "run_search",
    "run_sweep",
    "stats_from_dict",
    "stats_to_dict",
]
