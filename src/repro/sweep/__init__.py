"""Design-space sweeps: bulk simulation of one trace across many
configurations.

The paper positions ReSim for traces *"prepared off-line ... for bulk
simulations with varying design parameters"*; this package is that
workflow as a subsystem:

* :class:`~repro.sweep.spec.SweepSpec` — expand a parameter grid into
  validated, deduplicated :class:`ProcessorConfig` design points;
* :class:`~repro.sweep.runner.SweepRunner` — generate/persist the
  workload trace once, fan simulations out across worker processes,
  checkpoint every finished point so interrupted sweeps resume;
* :class:`~repro.sweep.result.SweepResult` — sort/filter/tabulate the
  outcomes and export them as JSON/CSV or Table 2-style comparison
  rows.

Quick start
-----------
>>> from repro.sweep import SweepSpec, run_sweep
>>> spec = SweepSpec(axes={"rob_entries": (8, 16, 32)})
>>> result = run_sweep(spec, "gzip", results_dir="sweep-out",
...                    budget=5_000, workers=4)   # doctest: +SKIP
>>> print(result.sorted_by("ipc").table())        # doctest: +SKIP
"""

from repro.sweep.result import SweepOutcome, SweepResult
from repro.sweep.runner import SweepRunner, run_sweep
from repro.sweep.serialize import (
    config_from_dict,
    config_key,
    config_to_dict,
    stats_from_dict,
    stats_to_dict,
)
from repro.sweep.spec import Expansion, SweepError, SweepPoint, SweepSpec

__all__ = [
    "Expansion",
    "SweepError",
    "SweepOutcome",
    "SweepPoint",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "config_from_dict",
    "config_key",
    "config_to_dict",
    "run_sweep",
    "stats_from_dict",
    "stats_to_dict",
]
