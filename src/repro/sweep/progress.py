"""Bulk-run progress reporting: points completed / failed / remaining.

PR 3's :class:`~repro.core.observers.ProgressObserver` reports inside
one engine run (records consumed, running IPC); bulk runs need the
layer above — *design points* completed out of how many, and whether
they were simulated or revived from checkpoints.  The sweep and
search runners emit :class:`SweepProgress` events as outcomes land
(in true completion order, whatever backend ran them);
:class:`ProgressPrinter` renders them as the ``--progress`` lines of
``resim sweep`` / ``resim search``.
"""

from __future__ import annotations

import sys
from typing import TextIO

from repro.sweep.result import SweepOutcome


class SweepProgress:
    """Event sink for bulk-run progress; the base class ignores all
    events, so custom reporters override only what they render."""

    def start(self, total: int | None, *, label: str = "sweep") -> None:
        """A run begins.  ``total`` is the number of design points
        when known up front (a sweep grid); adaptive search passes
        None and the count grows as strategies propose."""

    def round(self, index: int, count: int) -> None:
        """A search round proposes ``count`` candidate points."""

    def point(self, outcome: SweepOutcome) -> None:
        """One design point finished (``outcome.from_checkpoint``
        tells revived apart from freshly simulated)."""

    def unit_failed(self, unit_id: str, message: str) -> None:
        """One design point failed on its executor."""

    def finish(self) -> None:
        """The run is over; emit the final summary."""


class ProgressPrinter(SweepProgress):
    """Prints one line per event to ``stream`` (stderr by default —
    progress must not pollute piped table/CSV output) and a final
    summary line."""

    def __init__(self, stream: TextIO | None = None,
                 every: int = 1) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self._stream = stream
        self._every = every
        self._label = "sweep"
        self._total: int | None = None
        self.done = 0
        self.resumed = 0
        self.failed = 0

    def _print(self, message: str) -> None:
        print(f"[{self._label}] {message}",
              file=self._stream or sys.stderr)

    def start(self, total: int | None, *, label: str = "sweep") -> None:
        self._label = label
        self._total = total
        self.done = self.resumed = self.failed = 0
        if total is not None:
            self._print(f"{total} design point(s) to evaluate")

    def round(self, index: int, count: int) -> None:
        self._print(f"round {index}: {count} candidate point(s)")

    def point(self, outcome: SweepOutcome) -> None:
        self.done += 1
        if outcome.from_checkpoint:
            self.resumed += 1
        if self.done % self._every and self.done != self._total:
            return
        checkpointed = (f" ({self.resumed} from checkpoints)"
                        if self.resumed else "")
        if self._total is not None:
            remaining = self._total - self.done - self.failed
            self._print(
                f"{self.done}/{self._total} points done"
                f"{checkpointed}, {self.failed} failed, "
                f"{remaining} remaining")
        else:
            self._print(f"{self.done} points done{checkpointed}, "
                        f"{self.failed} failed")

    def unit_failed(self, unit_id: str, message: str) -> None:
        self.failed += 1
        self._print(f"point {unit_id} FAILED: {message}")

    def finish(self) -> None:
        simulated = self.done - self.resumed
        total = self.done + self.failed
        self._print(
            f"complete: {total} point(s) — {simulated} simulated, "
            f"{self.resumed} from checkpoints, {self.failed} failed")
