"""Backward-compatible re-export of :mod:`repro.serialize`.

The config/statistics (de)serialization helpers started life here as
sweep internals; the session facade (:mod:`repro.session`) now shares
them, so the single implementation lives in :mod:`repro.serialize`.
This module remains so existing imports keep working.
"""

from repro.serialize import (
    canonical_digest,
    config_from_dict,
    config_key,
    config_to_dict,
    stats_from_dict,
    stats_to_dict,
)

__all__ = [
    "canonical_digest",
    "config_from_dict",
    "config_key",
    "config_to_dict",
    "stats_from_dict",
    "stats_to_dict",
]
