"""Stock :class:`~repro.core.engine.EngineObserver` implementations.

The observer API turns engine instrumentation into pluggable
components; this module collects the implementations generic enough to
ship with the simulator.  The first is progress reporting — the
ROADMAP follow-up the streaming ingestion layer makes worthwhile: a
multi-million-record :class:`~repro.trace.source.FileSource` run can
now take minutes at constant memory, and the operator wants to see it
move.
"""

from __future__ import annotations

import sys
import time
from typing import TextIO

from repro.core.engine import EngineObserver, ReSimEngine


class ProgressObserver(EngineObserver):
    """Emits periodic progress lines while an engine runs.

    A line is printed every ``every_records`` consumed trace records
    (and no more often than ``min_seconds`` apart, so tiny traces
    don't spam), carrying records consumed / total, percentage, the
    major-cycle count and the running IPC::

        [progress] 120,000/1,000,000 records (12.0%)  cycle 48,213  IPC 2.49

    The total comes from the source's stream-length estimate — exact
    for trace files, the live length for growing in-memory streams
    (for those the percentage tracks the records *delivered so far*).

    Attach via ``engine.add_observer(ProgressObserver())``,
    ``Simulation.with_observer(...)``, or the ``--progress`` flag of
    ``resim simulate``.  Overrides only :meth:`on_cycle`, so the
    zero-observer hot loop is untouched and the attached cost is one
    integer compare per major cycle.
    """

    def __init__(
        self,
        every_records: int = 100_000,
        *,
        stream: TextIO | None = None,
        min_seconds: float = 0.0,
    ) -> None:
        if every_records < 1:
            raise ValueError(
                f"every_records must be >= 1, got {every_records}")
        if min_seconds < 0:
            raise ValueError(
                f"min_seconds must be >= 0, got {min_seconds}")
        self._every = every_records
        self._stream = stream
        self._min_seconds = min_seconds
        self._next_threshold = every_records
        self._last_emit = 0.0
        self.lines_emitted = 0

    def on_cycle(self, engine: ReSimEngine) -> None:
        consumed = engine.cursor_position
        if consumed < self._next_threshold:
            return
        now = time.monotonic()
        if now - self._last_emit < self._min_seconds:
            return
        self._last_emit = now
        # Skip thresholds a wide-fetch cycle jumped over.
        while self._next_threshold <= consumed:
            self._next_threshold += self._every
        self.emit(engine)

    def emit(self, engine: ReSimEngine) -> None:
        """Format and write one progress line (also usable directly,
        e.g. for a final summary after ``run()`` returns)."""
        consumed = engine.cursor_position
        total = engine.total_records
        percent = 100.0 * consumed / total if total else 100.0
        line = (
            f"[progress] {consumed:,}/{total:,} records "
            f"({percent:.1f}%)  cycle {engine.cycle:,}  "
            f"IPC {engine.stats.ipc:.2f}"
        )
        print(line, file=self._stream or sys.stderr)
        self.lines_emitted += 1
