"""The ReSim core: a trace-driven OoO timing engine plus its
minor-cycle pipeline models.

This package is the paper's primary contribution.  Two layers mirror
the paper's two-level structure (Section IV):

1. **Simulated architecture** — :class:`~repro.core.engine.ReSimEngine`
   advances one *major cycle* (one simulated processor cycle) at a
   time, enforcing the simulated micro-architectural semantics at major
   cycle boundaries: Fetch (IFQ, branch prediction, I-cache, misfetch),
   Dispatch (decouple buffer → Reorder Buffer + LSQ, rename table),
   Issue (ready scheduling onto ALU/MUL/DIV, load ports, D-cache),
   Writeback (oldest-completed broadcast + wakeup), Commit (in-order
   retire, store release, branch-predictor update, mis-speculation
   recovery) and Lsq_refresh (memory-dependence resolution, once per
   major cycle).

2. **ReSim's internal pipeline** — :mod:`~repro.core.minorpipe` models
   how one major cycle decomposes into *minor cycles* on the FPGA:
   the simple serial organization (2N+3 minor cycles, Figure 2), the
   improved one (N+4, Figure 3) and the optimized one (N+3, Figure 4,
   valid when the processor has at most N−1 memory ports).  Simulation
   wall-clock and throughput derive from major-cycle counts x minor
   latency x the device's minor-cycle frequency.
"""

from repro.core.config import (
    PAPER_2WIDE_CACHE,
    PAPER_4WIDE_PERFECT,
    ProcessorConfig,
)
from repro.core.engine import EngineObserver, ReSimEngine, SimulationResult
from repro.core.observers import ProgressObserver
from repro.core.minorpipe import (
    ImprovedPipeline,
    MinorPipeline,
    OptimizedPipeline,
    SimplePipeline,
    select_pipeline,
)
from repro.core.specialize import (
    ENGINES,
    EngineRequest,
    SpecializationError,
    SpecializedEngine,
    create_engine,
)
from repro.core.stats import SimulationStatistics

__all__ = [
    "ENGINES",
    "EngineObserver",
    "EngineRequest",
    "ImprovedPipeline",
    "MinorPipeline",
    "OptimizedPipeline",
    "PAPER_2WIDE_CACHE",
    "PAPER_4WIDE_PERFECT",
    "ProcessorConfig",
    "ProgressObserver",
    "ReSimEngine",
    "SimplePipeline",
    "SimulationResult",
    "SimulationStatistics",
    "SpecializationError",
    "SpecializedEngine",
    "create_engine",
    "select_pipeline",
]
