"""Simulation statistics unit.

Mirrors Section V.B: ReSim collects the counters found in
SimpleScalar's ``sim-outorder`` — total instructions, memory ops,
branches, cache hits, IFQ/ROB/LSQ occupancy, detailed branch outcomes
— in **64-bit hardware registers** ("To avoid overflow problems we use
64-bits registers for statistics").  :class:`Counter64` reproduces the
register width, wrapping modulo 2^64 exactly as the hardware would.

Statistics are *mergeable*: :meth:`SimulationStatistics.merge` reduces
the per-shard results of a design point that was split into segment
ranges (see :mod:`repro.exec.shard`) into one document — counters sum
(modulo 2^64, like the registers they model), occupancy samplers pool
their raw ``(total, samples)`` state so the merged average is the
cycle-weighted mean of the shards, derived rates (IPC, misprediction
and miss rates) recompute from the merged raw counters, and the
:attr:`~SimulationStatistics.shards` field records the provenance of
how the result was produced.

Merges may be **weighted** (``merge(weights=...)``): each part's
counter contributions scale by a non-negative *integer* weight before
summing (still modulo 2^64), and samplers pool weight-scaled raw
state.  Weight 1 on every part is bit-identical to the unweighted
merge; weight 0 erases a part.  Region-sampled simulation
(:mod:`repro.exec.regions`) uses this to extrapolate a cluster of
statistically similar trace segments from one simulated
representative.  Weights are integers by contract — resim-lint rule
X304 rejects float weight expressions, for the same reason X301
rejects float counter arithmetic: one float in the sum breaks the
exact-arithmetic contract every reducer relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from collections.abc import Iterable, Sequence

_MASK64 = (1 << 64) - 1


def _validate_weights(weights: Sequence[int], parts: int) -> tuple[int, ...]:
    """Coerce merge weights to a tuple of plain non-negative ints.

    Weights scale exact 64-bit counter sums, so they must be integers:
    a float weight would silently round large counts (X301's failure
    mode, one level up).  ``bool`` is rejected too — ``True`` works
    arithmetically but almost always means a caller passed a predicate
    where a multiplicity belongs.
    """
    cleaned = []
    for weight in weights:
        if isinstance(weight, bool) or not isinstance(weight, int):
            raise TypeError(
                f"merge weights must be plain ints (counters are exact "
                f"64-bit registers; float weights would round), got "
                f"{weight!r}")
        if weight < 0:
            raise ValueError(
                f"merge weights must be >= 0, got {weight}")
        cleaned.append(weight)
    if len(cleaned) != parts:
        raise ValueError(
            f"got {len(cleaned)} weight(s) for {parts} part(s); pass "
            f"exactly one weight per merged statistics object")
    return tuple(cleaned)


class Counter64:
    """A 64-bit hardware statistics register (wraps modulo 2^64)."""

    __slots__ = ("_value",)

    def __init__(self, value: int = 0) -> None:
        self._value = value & _MASK64

    @property
    def value(self) -> int:
        return self._value

    def increment(self, amount: int = 1) -> None:
        self._value = (self._value + amount) & _MASK64

    def __int__(self) -> int:
        return self._value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Counter64):
            return self._value == other._value
        if isinstance(other, int):
            return self._value == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._value)

    def __repr__(self) -> str:
        return f"Counter64({self._value})"


@dataclass
class OccupancySampler:
    """Accumulates per-cycle occupancy of one hardware structure."""

    total: int = 0
    samples: int = 0
    peak: int = 0

    def sample(self, occupancy: int) -> None:
        self.total += occupancy
        self.samples += 1
        if occupancy > self.peak:
            self.peak = occupancy

    @property
    def average(self) -> float:
        return self.total / self.samples if self.samples else 0.0

    def raw(self) -> tuple[int, int]:
        """The merge-safe raw state ``(total, samples)``.

        Reducers pool these sums instead of averaging averages, so a
        merged :attr:`average` is the sample-weighted (i.e.
        cycle-weighted) mean of the merged parts.
        """
        return (self.total, self.samples)

    def merge(self, others: Iterable[OccupancySampler]
              ) -> OccupancySampler:
        """Pool this sampler with others into a new sampler.

        Totals and sample counts add (every part sampled once per
        cycle, so the pooled average weights each part by its cycles);
        the peak is the maximum of the parts' peaks.
        """
        total, samples, peak = self.total, self.samples, self.peak
        for other in others:
            other_total, other_samples = other.raw()
            total += other_total
            samples += other_samples
            if other.peak > peak:
                peak = other.peak
        return OccupancySampler(total=total, samples=samples, peak=peak)


@dataclass
class SimulationStatistics:
    """Everything ReSim counts during a run."""

    # Headline counters.
    major_cycles: Counter64 = field(default_factory=Counter64)
    committed_instructions: Counter64 = field(default_factory=Counter64)
    fetched_instructions: Counter64 = field(default_factory=Counter64)
    fetched_wrong_path: Counter64 = field(default_factory=Counter64)
    discarded_wrong_path: Counter64 = field(default_factory=Counter64)
    trace_records_consumed: Counter64 = field(default_factory=Counter64)

    # Instruction classes (committed).
    committed_branches: Counter64 = field(default_factory=Counter64)
    committed_loads: Counter64 = field(default_factory=Counter64)
    committed_stores: Counter64 = field(default_factory=Counter64)

    # Branch behaviour.
    mispredictions: Counter64 = field(default_factory=Counter64)
    misfetches: Counter64 = field(default_factory=Counter64)
    taken_branches: Counter64 = field(default_factory=Counter64)
    prediction_divergence: Counter64 = field(default_factory=Counter64)

    # Memory behaviour.
    load_forwards: Counter64 = field(default_factory=Counter64)
    dcache_accesses: Counter64 = field(default_factory=Counter64)
    dcache_misses: Counter64 = field(default_factory=Counter64)
    icache_accesses: Counter64 = field(default_factory=Counter64)
    icache_misses: Counter64 = field(default_factory=Counter64)

    # Stall accounting (fetch).
    fetch_stall_cycles: Counter64 = field(default_factory=Counter64)
    misfetch_stall_cycles: Counter64 = field(default_factory=Counter64)
    recovery_stall_cycles: Counter64 = field(default_factory=Counter64)

    # Structure occupancy (Section V.B: "statistics about IFQ,
    # Reorder Buffer and LSQ").
    ifq_occupancy: OccupancySampler = field(default_factory=OccupancySampler)
    rob_occupancy: OccupancySampler = field(default_factory=OccupancySampler)
    lsq_occupancy: OccupancySampler = field(default_factory=OccupancySampler)

    # Provenance: ``None`` for a monolithic run; a list of one
    # JSON-safe dict per merged part (segment range, records, cycles)
    # when this object was produced by :meth:`merge`.
    shards: list | None = None

    @property
    def sharded(self) -> bool:
        """True when these statistics were merged from shard runs."""
        return bool(self.shards)

    # -- reduction -----------------------------------------------------

    def merge(self, others: Sequence[SimulationStatistics] = (), *,
              weights: Sequence[int] | None = None,
              shards: Sequence[dict] | None = None,
              ) -> SimulationStatistics:
        """Reduce this object and ``others`` into one new statistics
        object (none of the parts is mutated).

        Semantics, per field kind:

        * **counters** sum modulo 2^64 — exactly the arithmetic of the
          64-bit registers they model, which makes the merge
          associative and order-insensitive;
        * **occupancy samplers** pool their raw ``(total, samples)``
          state (:meth:`OccupancySampler.raw`), so merged averages are
          cycle-weighted means and merged peaks are maxima;
        * **derived rates** (IPC, misprediction/miss rates) need no
          handling — they are properties recomputed from the merged
          raw counters;
        * **shards provenance**: ``shards`` (a sequence of JSON-safe
          dicts) overrides; otherwise the parts' own provenance lists
          concatenate, so merging merged results keeps a flat record
          of every original shard.

        ``weights`` (one non-negative **integer** per part, ``self``
        first) scales each part's contribution: counters add
        ``weight * value`` (still modulo 2^64), samplers pool
        ``weight``-scaled raw state, and a zero-weight part's peaks
        are ignored.  ``weights=None`` and all-ones weights are
        bit-identical — weighting strictly generalizes the exact
        merge.  Region-sampled runs use weights to extrapolate a
        cluster of similar trace segments from one representative.

        Merging with no ``others`` and no ``shards`` is the identity
        (a copy that compares equal to ``self``).  Which counters of a
        *sharded simulation* sum exactly to the monolithic run's and
        which are approximate is a property of the engine, documented
        in :mod:`repro.exec.shard`.
        """
        parts = (self, *others)
        scale = (None if weights is None
                 else _validate_weights(weights, len(parts)))
        merged = SimulationStatistics()
        for spec in fields(self):
            if spec.name == "shards":
                continue
            values = [getattr(part, spec.name) for part in parts]
            if isinstance(values[0], Counter64):
                if scale is None:
                    setattr(merged, spec.name,
                            Counter64(sum(int(value) for value in values)))
                else:
                    setattr(merged, spec.name, Counter64(
                        sum(weight * int(value) for weight, value
                            in zip(scale, values, strict=True))))
            elif scale is None:
                setattr(merged, spec.name, values[0].merge(values[1:]))
            else:
                total = samples = peak = 0
                for weight, value in zip(scale, values, strict=True):
                    part_total, part_samples = value.raw()
                    total += weight * part_total
                    samples += weight * part_samples
                    if weight and value.peak > peak:
                        peak = value.peak
                setattr(merged, spec.name,
                        OccupancySampler(total=total, samples=samples,
                                         peak=peak))
        if shards is not None:
            merged.shards = [dict(entry) for entry in shards]
        else:
            combined = [entry for part in parts
                        for entry in (part.shards or ())]
            merged.shards = combined or None
        return merged

    # -- derived -------------------------------------------------------

    @property
    def ipc(self) -> float:
        """Committed instructions per major cycle."""
        cycles = int(self.major_cycles)
        return int(self.committed_instructions) / cycles if cycles else 0.0

    @property
    def fetch_throughput(self) -> float:
        """Fetched (correct + wrong path) instructions per major cycle."""
        cycles = int(self.major_cycles)
        return int(self.fetched_instructions) / cycles if cycles else 0.0

    @property
    def trace_throughput(self) -> float:
        """All trace records consumed (fetched or discarded) per cycle.

        This is the Table 3 notion of throughput: the *total trace
        instruction demands*, counting wrong-path records that ReSim
        skips at recovery as well as the ones it actually fetched.
        """
        cycles = int(self.major_cycles)
        return int(self.trace_records_consumed) / cycles if cycles else 0.0

    @property
    def misprediction_rate(self) -> float:
        """Mispredictions per committed branch."""
        branches = int(self.committed_branches)
        return int(self.mispredictions) / branches if branches else 0.0

    @property
    def dcache_miss_rate(self) -> float:
        accesses = int(self.dcache_accesses)
        return int(self.dcache_misses) / accesses if accesses else 0.0

    @property
    def icache_miss_rate(self) -> float:
        accesses = int(self.icache_accesses)
        return int(self.icache_misses) / accesses if accesses else 0.0

    def report(self) -> str:
        """Multi-line human-readable statistics dump.

        Every :class:`Counter64` field's value appears verbatim in the
        rendered text (a drift-guard test asserts it, mirroring lint
        rule X303): a counter the report silently drops is a counter
        nobody ever reads.
        """
        lines = [
            f"major cycles            : {int(self.major_cycles)}",
            f"committed instructions  : {int(self.committed_instructions)}"
            f"  (IPC {self.ipc:.3f})",
            f"fetched instructions    : {int(self.fetched_instructions)}"
            f"  ({int(self.fetched_wrong_path)} wrong-path)",
            f"trace records consumed  : {int(self.trace_records_consumed)}"
            f"  ({int(self.discarded_wrong_path)} discarded)",
            f"branches                : {int(self.committed_branches)}"
            f"  ({int(self.taken_branches)} taken)",
            f"mispredictions          : {int(self.mispredictions)}"
            f"  (rate {self.misprediction_rate:.4f})",
            f"misfetches              : {int(self.misfetches)}",
            f"prediction divergence   : "
            f"{int(self.prediction_divergence)}",
            f"loads / stores          : {int(self.committed_loads)} /"
            f" {int(self.committed_stores)}"
            f"  ({int(self.load_forwards)} forwarded)",
            f"I-cache                 : {int(self.icache_accesses)} accesses,"
            f" {int(self.icache_misses)} misses"
            f" (rate {self.icache_miss_rate:.4f})",
            f"D-cache                 : {int(self.dcache_accesses)} accesses,"
            f" {int(self.dcache_misses)} misses"
            f" (rate {self.dcache_miss_rate:.4f})",
            f"IFQ / ROB / LSQ avg occ : {self.ifq_occupancy.average:.2f} /"
            f" {self.rob_occupancy.average:.2f} /"
            f" {self.lsq_occupancy.average:.2f}",
            f"IFQ / ROB / LSQ peak occ: {self.ifq_occupancy.peak} /"
            f" {self.rob_occupancy.peak} /"
            f" {self.lsq_occupancy.peak}",
            f"fetch stalls (cycles)   : {int(self.fetch_stall_cycles)}"
            f"  (misfetch {int(self.misfetch_stall_cycles)},"
            f" recovery {int(self.recovery_stall_cycles)})",
        ]
        if self.sharded:
            # Weighted (region-sampled) provenance entries carry a
            # "weight" key; exact shard merges never do.
            weighted = any(isinstance(entry, dict) and "weight" in entry
                           for entry in self.shards)
            noun = "regions" if weighted else "shards"
            lines.append(
                f"merged from {noun:12s}: {len(self.shards)}")
        return "\n".join(lines)
