"""Simulation statistics unit.

Mirrors Section V.B: ReSim collects the counters found in
SimpleScalar's ``sim-outorder`` — total instructions, memory ops,
branches, cache hits, IFQ/ROB/LSQ occupancy, detailed branch outcomes
— in **64-bit hardware registers** ("To avoid overflow problems we use
64-bits registers for statistics").  :class:`Counter64` reproduces the
register width, wrapping modulo 2^64 exactly as the hardware would.

Statistics are *mergeable*: :meth:`SimulationStatistics.merge` reduces
the per-shard results of a design point that was split into segment
ranges (see :mod:`repro.exec.shard`) into one document — counters sum
(modulo 2^64, like the registers they model), occupancy samplers pool
their raw ``(total, samples)`` state so the merged average is the
cycle-weighted mean of the shards, derived rates (IPC, misprediction
and miss rates) recompute from the merged raw counters, and the
:attr:`~SimulationStatistics.shards` field records the provenance of
how the result was produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from collections.abc import Iterable, Sequence

_MASK64 = (1 << 64) - 1


class Counter64:
    """A 64-bit hardware statistics register (wraps modulo 2^64)."""

    __slots__ = ("_value",)

    def __init__(self, value: int = 0) -> None:
        self._value = value & _MASK64

    @property
    def value(self) -> int:
        return self._value

    def increment(self, amount: int = 1) -> None:
        self._value = (self._value + amount) & _MASK64

    def __int__(self) -> int:
        return self._value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Counter64):
            return self._value == other._value
        if isinstance(other, int):
            return self._value == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._value)

    def __repr__(self) -> str:
        return f"Counter64({self._value})"


@dataclass
class OccupancySampler:
    """Accumulates per-cycle occupancy of one hardware structure."""

    total: int = 0
    samples: int = 0
    peak: int = 0

    def sample(self, occupancy: int) -> None:
        self.total += occupancy
        self.samples += 1
        if occupancy > self.peak:
            self.peak = occupancy

    @property
    def average(self) -> float:
        return self.total / self.samples if self.samples else 0.0

    def raw(self) -> tuple[int, int]:
        """The merge-safe raw state ``(total, samples)``.

        Reducers pool these sums instead of averaging averages, so a
        merged :attr:`average` is the sample-weighted (i.e.
        cycle-weighted) mean of the merged parts.
        """
        return (self.total, self.samples)

    def merge(self, others: Iterable[OccupancySampler]
              ) -> OccupancySampler:
        """Pool this sampler with others into a new sampler.

        Totals and sample counts add (every part sampled once per
        cycle, so the pooled average weights each part by its cycles);
        the peak is the maximum of the parts' peaks.
        """
        total, samples, peak = self.total, self.samples, self.peak
        for other in others:
            other_total, other_samples = other.raw()
            total += other_total
            samples += other_samples
            if other.peak > peak:
                peak = other.peak
        return OccupancySampler(total=total, samples=samples, peak=peak)


@dataclass
class SimulationStatistics:
    """Everything ReSim counts during a run."""

    # Headline counters.
    major_cycles: Counter64 = field(default_factory=Counter64)
    committed_instructions: Counter64 = field(default_factory=Counter64)
    fetched_instructions: Counter64 = field(default_factory=Counter64)
    fetched_wrong_path: Counter64 = field(default_factory=Counter64)
    discarded_wrong_path: Counter64 = field(default_factory=Counter64)
    trace_records_consumed: Counter64 = field(default_factory=Counter64)

    # Instruction classes (committed).
    committed_branches: Counter64 = field(default_factory=Counter64)
    committed_loads: Counter64 = field(default_factory=Counter64)
    committed_stores: Counter64 = field(default_factory=Counter64)

    # Branch behaviour.
    mispredictions: Counter64 = field(default_factory=Counter64)
    misfetches: Counter64 = field(default_factory=Counter64)
    taken_branches: Counter64 = field(default_factory=Counter64)
    prediction_divergence: Counter64 = field(default_factory=Counter64)

    # Memory behaviour.
    load_forwards: Counter64 = field(default_factory=Counter64)
    dcache_accesses: Counter64 = field(default_factory=Counter64)
    dcache_misses: Counter64 = field(default_factory=Counter64)
    icache_accesses: Counter64 = field(default_factory=Counter64)
    icache_misses: Counter64 = field(default_factory=Counter64)

    # Stall accounting (fetch).
    fetch_stall_cycles: Counter64 = field(default_factory=Counter64)
    misfetch_stall_cycles: Counter64 = field(default_factory=Counter64)
    recovery_stall_cycles: Counter64 = field(default_factory=Counter64)

    # Structure occupancy (Section V.B: "statistics about IFQ,
    # Reorder Buffer and LSQ").
    ifq_occupancy: OccupancySampler = field(default_factory=OccupancySampler)
    rob_occupancy: OccupancySampler = field(default_factory=OccupancySampler)
    lsq_occupancy: OccupancySampler = field(default_factory=OccupancySampler)

    # Provenance: ``None`` for a monolithic run; a list of one
    # JSON-safe dict per merged part (segment range, records, cycles)
    # when this object was produced by :meth:`merge`.
    shards: list | None = None

    @property
    def sharded(self) -> bool:
        """True when these statistics were merged from shard runs."""
        return bool(self.shards)

    # -- reduction -----------------------------------------------------

    def merge(self, others: Sequence[SimulationStatistics] = (), *,
              shards: Sequence[dict] | None = None,
              ) -> SimulationStatistics:
        """Reduce this object and ``others`` into one new statistics
        object (none of the parts is mutated).

        Semantics, per field kind:

        * **counters** sum modulo 2^64 — exactly the arithmetic of the
          64-bit registers they model, which makes the merge
          associative and order-insensitive;
        * **occupancy samplers** pool their raw ``(total, samples)``
          state (:meth:`OccupancySampler.raw`), so merged averages are
          cycle-weighted means and merged peaks are maxima;
        * **derived rates** (IPC, misprediction/miss rates) need no
          handling — they are properties recomputed from the merged
          raw counters;
        * **shards provenance**: ``shards`` (a sequence of JSON-safe
          dicts) overrides; otherwise the parts' own provenance lists
          concatenate, so merging merged results keeps a flat record
          of every original shard.

        Merging with no ``others`` and no ``shards`` is the identity
        (a copy that compares equal to ``self``).  Which counters of a
        *sharded simulation* sum exactly to the monolithic run's and
        which are approximate is a property of the engine, documented
        in :mod:`repro.exec.shard`.
        """
        parts = (self, *others)
        merged = SimulationStatistics()
        for spec in fields(self):
            if spec.name == "shards":
                continue
            values = [getattr(part, spec.name) for part in parts]
            if isinstance(values[0], Counter64):
                setattr(merged, spec.name,
                        Counter64(sum(int(value) for value in values)))
            else:
                setattr(merged, spec.name, values[0].merge(values[1:]))
        if shards is not None:
            merged.shards = [dict(entry) for entry in shards]
        else:
            combined = [entry for part in parts
                        for entry in (part.shards or ())]
            merged.shards = combined or None
        return merged

    # -- derived -------------------------------------------------------

    @property
    def ipc(self) -> float:
        """Committed instructions per major cycle."""
        cycles = int(self.major_cycles)
        return int(self.committed_instructions) / cycles if cycles else 0.0

    @property
    def fetch_throughput(self) -> float:
        """Fetched (correct + wrong path) instructions per major cycle."""
        cycles = int(self.major_cycles)
        return int(self.fetched_instructions) / cycles if cycles else 0.0

    @property
    def trace_throughput(self) -> float:
        """All trace records consumed (fetched or discarded) per cycle.

        This is the Table 3 notion of throughput: the *total trace
        instruction demands*, counting wrong-path records that ReSim
        skips at recovery as well as the ones it actually fetched.
        """
        cycles = int(self.major_cycles)
        return int(self.trace_records_consumed) / cycles if cycles else 0.0

    @property
    def misprediction_rate(self) -> float:
        """Mispredictions per committed branch."""
        branches = int(self.committed_branches)
        return int(self.mispredictions) / branches if branches else 0.0

    @property
    def dcache_miss_rate(self) -> float:
        accesses = int(self.dcache_accesses)
        return int(self.dcache_misses) / accesses if accesses else 0.0

    @property
    def icache_miss_rate(self) -> float:
        accesses = int(self.icache_accesses)
        return int(self.icache_misses) / accesses if accesses else 0.0

    def report(self) -> str:
        """Multi-line human-readable statistics dump."""
        lines = [
            f"major cycles            : {int(self.major_cycles)}",
            f"committed instructions  : {int(self.committed_instructions)}"
            f"  (IPC {self.ipc:.3f})",
            f"fetched instructions    : {int(self.fetched_instructions)}"
            f"  ({int(self.fetched_wrong_path)} wrong-path)",
            f"trace records consumed  : {int(self.trace_records_consumed)}"
            f"  ({int(self.discarded_wrong_path)} discarded)",
            f"branches                : {int(self.committed_branches)}"
            f"  ({int(self.taken_branches)} taken)",
            f"mispredictions          : {int(self.mispredictions)}"
            f"  (rate {self.misprediction_rate:.4f})",
            f"misfetches              : {int(self.misfetches)}",
            f"loads / stores          : {int(self.committed_loads)} /"
            f" {int(self.committed_stores)}"
            f"  ({int(self.load_forwards)} forwarded)",
            f"I-cache                 : {int(self.icache_accesses)} accesses,"
            f" miss rate {self.icache_miss_rate:.4f}",
            f"D-cache                 : {int(self.dcache_accesses)} accesses,"
            f" miss rate {self.dcache_miss_rate:.4f}",
            f"IFQ / ROB / LSQ avg occ : {self.ifq_occupancy.average:.2f} /"
            f" {self.rob_occupancy.average:.2f} /"
            f" {self.lsq_occupancy.average:.2f}",
            f"fetch stalls (cycles)   : {int(self.fetch_stall_cycles)}"
            f"  (misfetch {int(self.misfetch_stall_cycles)},"
            f" recovery {int(self.recovery_stall_cycles)})",
        ]
        if self.sharded:
            lines.append(
                f"merged from shards      : {len(self.shards)}")
        return "\n".join(lines)
