"""Config-specialized engine generation — the raw-speed tier.

:class:`~repro.core.engine.ReSimEngine` interprets one immutable
:class:`~repro.core.config.ProcessorConfig`: every major cycle it
re-reads the same config attributes, re-dispatches through the same
registries, and re-tests the same dead branches (no observers
attached, no wrong-path records in the trace, perfect memory).
Reshadi & Dutt ("Generic Pipelined Processor Modeling and High
Performance Cycle-Accurate Simulator Generation") get their speed by
*generating* the simulator from the machine description instead.
This module applies that move to ReSim:

* :func:`compile_engine` emits the source of a ``run_trace`` function
  for one fully-resolved configuration — config constants are inlined
  as literals, predictor/cache calls are pre-bound locals, statistics
  are plain local integers, and statically-dead branches (observer
  dispatch, wrong-path recovery for wrong-path-free traces, the cache
  hierarchy under perfect memory) are not emitted at all — then
  ``exec``-compiles it, memoized in-process by a config-content hash;
* :class:`SpecializedEngine` wraps the compiled function behind the
  reference engine's ``run()`` shape and rebuilds the exact
  :class:`~repro.core.stats.SimulationStatistics` from the returned
  counters;
* :data:`ENGINES` is the tier registry (``reference`` |
  ``specialized``) with :func:`create_engine` as the selection point:
  a request the specialized tier cannot honour (observers, warmup/ROI
  windows, subclassed configs) transparently falls back to the
  reference engine.

The contract is **bit-identity**: for every supported request the
specialized engine produces the same ``SimulationStatistics`` — and
therefore the same result documents, checkpoints, and cache keys — as
the reference engine, proven by the differential conformance suite in
``tests/test_specialize.py`` with the reference engine as oracle
(exactly how backends and shards were landed).

The generated code is a line-for-line transcription of the reference
stage semantics (Commit, Writeback, Lsq_refresh, Issue, Dispatch,
Fetch in reverse pipeline order); when editing ``engine.py``'s stage
logic, update :func:`_engine_source` in lockstep — the differential
suite fails loudly on any divergence.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from collections.abc import Callable, Sequence

from repro.bpred.unit import BranchPredictorUnit
from repro.cache.cache import CacheConfig
from repro.cache.hierarchy import MemorySystem
from repro.core.config import ProcessorConfig
from repro.core.engine import EngineObserver, ReSimEngine, SimulationResult
from repro.core.stats import Counter64, OccupancySampler, SimulationStatistics
from repro.isa.instruction import INSTRUCTION_BYTES
from repro.isa.opcodes import FuClass
from repro.isa.program import TEXT_BASE
from repro.serialize import canonical_digest, config_to_dict
from repro.trace.record import BranchRecord, MemoryRecord, TraceRecord
from repro.trace.source import InMemorySource, TraceSource, as_source
from repro.utils.registry import Registry


class SpecializationError(ValueError):
    """A request the specialized tier cannot honour was forced on it."""


@dataclass(frozen=True)
class EngineRequest:
    """Everything tier selection needs to know about one run.

    Mirrors the reference engine's constructor plus the run-control
    surface that decides specializability: observers and
    instrumentation windows force the reference tier, and
    ``wrong_path_free`` (a *sound* static fact about the trace,
    derived from generation statistics or the v2 header's
    committed-count consistency field) lets the generator compile out
    speculative fetch and recovery entirely.
    """

    config: ProcessorConfig
    trace: TraceSource | Sequence[TraceRecord]
    start_pc: int | None = None
    update_predictor_at_commit: bool = True
    observers: tuple[EngineObserver, ...] = ()
    warmup_instructions: int = 0
    roi_instructions: int | None = None
    stop_when: Callable | None = None
    wrong_path_free: bool = False


# ----------------------------------------------------------------------
# The in-flight-op record used by generated code.
#
# A plain __slots__ class, not the reference dataclass: generated code
# needs only the fields it actually reads, pre-decoded at admit time
# (so the hot loop never touches the trace record again), and encodes
# state as a small int (0=dispatched, 1=issued, 2=completed,
# 3=squashed; committed ops leave all structures immediately) and the
# waiting-on set as two producer-seq slots (an op has at most two
# source registers), both measurably cheaper than enum/set traffic.
# ----------------------------------------------------------------------


class _Op:
    __slots__ = (
        "seq", "pc", "state", "exec_done", "completed",
        "w1", "w2", "is_mem", "is_load", "is_store", "is_branch",
        "fuc", "tag", "src1", "src2", "d1", "d2", "address",
        "memory_ready", "forwarded", "bk", "taken", "target",
        "resolution",
    )


def _block(text: str, indent: int) -> list[str]:
    """Re-indent a template chunk by ``indent`` spaces."""
    pad = " " * indent
    lines = []
    for line in text.strip("\n").splitlines():
        lines.append(pad + line if line.strip() else "")
    return lines


def _admit_chunk(*, pc_var: str, wrong_path: bool) -> str:
    """The fetch-side record decode: consume one record into the IFQ.

    Pre-computes everything the later stages read so the hot loop
    never revisits the trace record.  Register semantics transcribe
    ``TraceRecord.src_registers``/``dest_registers``: sources are the
    nonzero src fields in order, destinations are (HI, LO) for MUL/DIV
    and the nonzero dest otherwise.
    """
    tag_line = "op.tag = rec.tag\n" if wrong_path else ""
    return f"""
op = Op()
op.seq = seq
seq += 1
op.pc = {pc_var}
op.state = 0
op.w1 = -1
op.w2 = -1
op.src1 = rec.src1
op.src2 = rec.src2
op.memory_ready = False
op.forwarded = False
{tag_line}klass = rec.__class__
fu = rec.fu
if klass is MemRec:
    op.is_mem = True
    op.is_branch = False
    ld = fu is FU_LOAD
    op.is_load = ld
    op.is_store = not ld
    op.address = rec.address
    op.fuc = 0
    op.d1 = rec.dest
    op.d2 = 0
elif klass is BrRec:
    op.is_mem = False
    op.is_load = False
    op.is_store = False
    op.is_branch = True
    op.bk = rec.branch_kind
    op.taken = rec.taken
    op.target = rec.target
    op.fuc = 0
    op.d1 = rec.dest
    op.d2 = 0
else:
    op.is_mem = False
    op.is_branch = False
    op.is_load = fu is FU_LOAD
    op.is_store = fu is FU_STORE
    if fu is FU_MUL:
        op.fuc = 1
        op.d1 = 32
        op.d2 = 33
    elif fu is FU_DIV:
        op.fuc = 2
        op.d1 = 32
        op.d2 = 33
    else:
        op.fuc = 0
        op.d1 = rec.dest
        op.d2 = 0
ifq.append(op)
c_fetched += 1
c_cons += 1
"""


def _icache_chunk(*, pc_var: str, perfect: bool, block_bytes: int) -> str:
    """The once-per-line I-cache access; on a miss, charges the stall
    and breaks out of the fetch loop (the record stays in the trace
    for the post-stall retry, which then hits the line buffer)."""
    if perfect:
        return f"""
line = {pc_var} // 64
if line != last_line:
    last_line = line
    c_iacc += 1
"""
    return f"""
line = {pc_var} // {block_bytes}
if line != last_line:
    res = m_ifetch({pc_var})
    c_iacc += 1
    last_line = line
    if not res.hit:
        c_imiss += 1
        fetch_stall += res.latency - 1
        break
"""


def _engine_source(
    config: ProcessorConfig,
    *,
    update_at_commit: bool,
    wrong_path: bool,
    inline_source: bool,
) -> str:
    """Emit the specialized ``run_trace`` source for one configuration.

    Variant axes (each statically resolved, never re-tested at run
    time): in-memory records vs generic :class:`TraceSource` cursor,
    perfect memory vs cache hierarchy, commit-time vs fetch-time
    predictor training, and wrong-path handling present vs compiled
    out (sound only for traces proven wrong-path-free).
    """
    width = config.width
    perfect = config.perfect_memory
    lines: list[str] = []

    def emit(text: str, indent: int = 0) -> None:
        lines.extend(_block(text, indent))

    emit(f"""
# Generated by repro.core.specialize for one ProcessorConfig.
# Bit-identical transcription of repro.core.engine.ReSimEngine.
def run_trace(trace, start_pc, bpred, memory, max_cycles):
    Op = _Op
    MemRec = _MemoryRecord
    BrRec = _BranchRecord
    FU_LOAD = _FU_LOAD
    FU_STORE = _FU_STORE
    FU_MUL = _FU_MUL
    FU_DIV = _FU_DIV
    bp_resolve = bpred.resolve
    bp_update = bpred.update
    ifq = _deque()
    dec = _deque()
    rob = _deque()
    lsq = _deque()
    table = [None] * 64
    consumers = dict()
    cycle = 0
    seq = 0
    fetch_pc = start_pc
    fetch_stall = 0
    last_line = -1
    c_commit = 0
    c_fetched = 0
    c_fwp = 0
    c_disc = 0
    c_cons = 0
    c_branches = 0
    c_loads = 0
    c_stores = 0
    c_mispred = 0
    c_misfetch = 0
    c_taken = 0
    c_diverge = 0
    c_fwd = 0
    c_dacc = 0
    c_dmiss = 0
    c_iacc = 0
    c_imiss = 0
    c_fstall = 0
    c_mfstall = 0
    c_rstall = 0
    ifq_tot = 0
    ifq_peak = 0
    rob_tot = 0
    rob_peak = 0
    lsq_tot = 0
    lsq_peak = 0
""")
    if inline_source:
        emit("""
    records = trace
    idx = 0
""")
    else:
        emit("""
    src_peek = trace.peek
    src_next = trace.next
    src_tagged = trace.peek_is_tagged
""")
    if not perfect:
        emit("""
    m_ifetch = memory.ifetch
    m_dread = memory.dread
    m_dwrite = memory.dwrite
""")
    if wrong_path:
        emit("""
    speculative = False
    spec_pc = 0
    spec_branch_seq = -1
""")
        # Cold-start drain: a segment-range shard may open inside a
        # wrong-path block whose faulting branch lives in the previous
        # shard (same bookkeeping as the reference constructor).
        if inline_source:
            emit("""
    while idx < len(records) and records[idx].tag:
        idx += 1
        c_disc += 1
        c_cons += 1
""")
        else:
            emit("""
    while src_tagged():
        src_next()
        c_disc += 1
        c_cons += 1
""")
    if config.div_count != 1:
        emit(f"""
    div_busy = [0] * {config.div_count}
""")
    else:
        emit("""
    div_busy = 0
""")

    # ---- main loop: done check, cycle budget ----
    if inline_source:
        emit("""
    while True:
        if idx >= len(records) and not rob and not ifq and not dec:
            break
        if cycle >= max_cycles:
            raise RuntimeError(
                "simulation exceeded " + str(max_cycles) + " cycles ("
                + str(idx) + "/" + str(len(records))
                + " records consumed)")
""")
    else:
        emit("""
    while True:
        if src_peek() is None and not rob and not ifq and not dec:
            break
        if cycle >= max_cycles:
            raise RuntimeError(
                "simulation exceeded " + str(max_cycles) + " cycles ("
                + str(trace.consumed) + "/" + str(trace.total_records)
                + " records consumed)")
""")
    emit("""
        cycle += 1
        alu_used = 0
        mul_used = 0
        div_used = 0
""")

    # ---- Commit ----
    emit(f"""
        # ---- Commit ----
        committed = 0
        wr_used = 0
        while committed < {width} and rob:
            op = rob[0]
            if op.state != 2 or op.completed >= cycle:
                break
            if op.is_store:
                if wr_used >= {config.mem_write_ports}:
                    break
                wr_used += 1
""")
    if perfect:
        emit("""
                c_dacc += 1
""")
    else:
        emit("""
                res = m_dwrite(op.address)
                c_dacc += 1
                if not res.hit:
                    c_dmiss += 1
""")
    emit("""
            rob.popleft()
            if op.is_mem:
                lsq.popleft()
            d = op.d1
            if d and table[d] is op:
                table[d] = None
            d = op.d2
            if d and table[d] is op:
                table[d] = None
            consumers.pop(op.seq, None)
            c_commit += 1
            if op.is_load:
                c_loads += 1
            elif op.is_store:
                c_stores += 1
            elif op.is_branch:
                c_branches += 1
                if op.taken:
                    c_taken += 1
""")
    if update_at_commit:
        emit("""
                bp_update(op.pc, op.bk, op.taken, op.target,
                          op.resolution)
""")
    if wrong_path:
        emit("""
                committed += 1
                if op.seq == spec_branch_seq:
                    # Mis-speculation recovery: flush the pipeline,
                    # discard the rest of the tagged block, redirect.
                    for x in rob:
                        x.state = 3
                        consumers.pop(x.seq, None)
                    rob.clear()
                    lsq.clear()
                    ifq.clear()
                    dec.clear()
                    for r in range(64):
                        p = table[r]
                        if p is not None and p.tag:
                            table[r] = None
""")
        if inline_source:
            emit("""
                    while idx < len(records) and records[idx].tag:
                        idx += 1
                        c_disc += 1
                        c_cons += 1
""")
        else:
            emit("""
                    while src_tagged():
                        src_next()
                        c_disc += 1
                        c_cons += 1
""")
        emit(f"""
                    fetch_pc = (op.target if op.taken
                                else op.pc + {INSTRUCTION_BYTES})
                    speculative = False
                    spec_branch_seq = -1
                    fetch_stall += {config.misspeculation_penalty}
                    c_rstall += {config.misspeculation_penalty}
                    c_mispred += 1
                    break
                continue
            committed += 1
""")
    else:
        emit("""
                committed += 1
                continue
            committed += 1
""")

    # ---- Writeback ----
    emit(f"""
        # ---- Writeback ----
        remaining = {width}
        for op in rob:
            if remaining == 0:
                break
            if op.state == 1 and op.exec_done <= cycle:
                op.state = 2
                op.completed = cycle
                remaining -= 1
                s = op.seq
                for c in consumers.pop(s, ()):
                    if c.state != 3:
                        if c.w1 == s:
                            c.w1 = -1
                        if c.w2 == s:
                            c.w2 = -1
""")

    # ---- Lsq_refresh ----
    emit("""
        # ---- Lsq_refresh ----
        stores = []
        for op in lsq:
            if op.is_store:
                stores.append(op)
                continue
            if op.state != 0 or op.memory_ready:
                continue
            if op.w1 >= 0 or op.w2 >= 0:
                continue
            ok = True
            fwd = False
            a = op.address >> 2
            for st in reversed(stores):
                s = st.state
                if s != 1 and s != 2:
                    ok = False
                    break
                if (st.address >> 2) == a:
                    if s == 2:
                        fwd = True
                    else:
                        ok = False
                    break
            if ok:
                op.memory_ready = True
                if fwd:
                    op.forwarded = True
""")

    # ---- Issue ----
    emit(f"""
        # ---- Issue ----
        remaining = {width}
        rd_used = 0
        for op in rob:
            if remaining == 0:
                break
            if op.state != 0 or op.w1 >= 0 or op.w2 >= 0:
                continue
            if op.is_load:
                if not op.memory_ready:
                    continue
                if op.forwarded:
                    lat = 1
                    c_fwd += 1
                else:
                    if rd_used >= {config.mem_read_ports}:
                        continue
                    rd_used += 1
""")
    if perfect:
        emit("""
                    c_dacc += 1
                    lat = 1
""")
    else:
        emit("""
                    res = m_dread(op.address)
                    c_dacc += 1
                    if not res.hit:
                        c_dmiss += 1
                    lat = res.latency
""")
    emit(f"""
            else:
                f = op.fuc
                if f == 0:
                    if alu_used >= {config.alu_count}:
                        continue
                    alu_used += 1
                    lat = {config.alu_latency}
                elif f == 1:
                    if mul_used >= {config.mul_count}:
                        continue
                    mul_used += 1
                    lat = {config.mul_latency}
                else:
""")
    if config.div_count == 1:
        emit(f"""
                    if div_used >= 1 or div_busy > cycle:
                        continue
                    div_used += 1
                    div_busy = cycle + {config.div_latency}
                    lat = {config.div_latency}
""")
    else:
        emit(f"""
                    if div_used >= {config.div_count}:
                        continue
                    slot = -1
                    for i in range({config.div_count}):
                        if div_busy[i] <= cycle:
                            slot = i
                            break
                    if slot < 0:
                        continue
                    div_used += 1
                    div_busy[slot] = cycle + {config.div_latency}
                    lat = {config.div_latency}
""")
    emit("""
            op.state = 1
            op.exec_done = cycle + lat
            remaining -= 1
""")

    # ---- Dispatch ----
    emit(f"""
        # ---- Dispatch ----
        dispatched = 0
        while dispatched < {width} and dec:
            op = dec[0]
            if len(rob) >= {config.rob_entries}:
                break
            if op.is_mem and len(lsq) >= {config.lsq_entries}:
                break
            dec.popleft()
            rob.append(op)
            if op.is_mem:
                lsq.append(op)
            r = op.src1
            if r:
                p = table[r]
                if p is not None and p.state < 2:
                    ps = p.seq
                    op.w1 = ps
                    cl = consumers.get(ps)
                    if cl is None:
                        consumers[ps] = [op]
                    else:
                        cl.append(op)
            r = op.src2
            if r:
                p = table[r]
                if p is not None and p.state < 2:
                    ps = p.seq
                    op.w2 = ps
                    cl = consumers.get(ps)
                    if cl is None:
                        consumers[ps] = [op]
                    else:
                        cl.append(op)
            d = op.d1
            if d:
                table[d] = op
            d = op.d2
            if d:
                table[d] = op
            dispatched += 1
""")

    # ---- Fetch ----
    emit(f"""
        # ---- Fetch ----
        moved = 0
        while moved < {width} and len(dec) < {width} and ifq:
            dec.append(ifq.popleft())
            moved += 1
        if fetch_stall > 0:
            fetch_stall -= 1
            c_fstall += 1
        else:
            fetched = 0
            while fetched < {width} and len(ifq) < {config.ifq_entries}:
""")
    if inline_source:
        emit("""
                if idx >= len(records):
                    break
                rec = records[idx]
""", indent=0)
    else:
        emit("""
                rec = src_peek()
                if rec is None:
                    break
""")
    consume = "idx += 1" if inline_source else "src_next()"
    if wrong_path:
        emit("""
                if speculative:
                    if not rec.tag:
                        break
""")
        emit(_icache_chunk(pc_var="spec_pc", perfect=perfect,
                           block_bytes=config.icache.block_bytes), indent=20)
        emit(consume, indent=20)
        emit(_admit_chunk(pc_var="spec_pc", wrong_path=True), indent=20)
        emit(f"""
                    c_fwp += 1
                    spec_pc += {INSTRUCTION_BYTES}
                    fetched += 1
                    continue
                assert not rec.tag, (
                    "tagged record outside speculative fetch; trace "
                    "and engine disagree about a misprediction")
""")
    else:
        emit("""
                if rec.tag:
                    raise SpecializationError(
                        "trace contains a tagged (wrong-path) record "
                        "but the engine was specialized for a "
                        "wrong-path-free trace")
""")
    emit("""
                pc = fetch_pc
""")
    emit(_icache_chunk(pc_var="pc", perfect=perfect,
                       block_bytes=config.icache.block_bytes), indent=16)
    emit(consume, indent=16)
    emit(_admit_chunk(pc_var="pc", wrong_path=wrong_path), indent=16)
    emit("""
                fetched += 1
                if op.is_branch:
                    resolution = bp_resolve(pc, op.bk, op.taken,
                                            op.target)
""")
    if update_at_commit:
        emit("""
                    op.resolution = resolution
""")
    else:
        emit("""
                    bp_update(pc, op.bk, op.taken, op.target,
                              resolution)
""")
    if wrong_path:
        if inline_source:
            emit("""
                    tagged_next = (idx < len(records)
                                   and records[idx].tag)
""")
        else:
            emit("""
                    tagged_next = src_tagged()
""")
        emit(f"""
                    if resolution.mispredicted != tagged_next:
                        c_diverge += 1
                    if tagged_next:
                        speculative = True
                        spec_branch_seq = op.seq
                        wps = resolution.wrong_path_start
                        if wps is not None:
                            spec_pc = wps
                        elif op.taken:
                            spec_pc = pc + {INSTRUCTION_BYTES}
                        else:
                            spec_pc = op.target
                        break
""")
    else:
        emit("""
                    if resolution.mispredicted:
                        c_diverge += 1
""")
    emit(f"""
                    if op.taken:
                        fetch_pc = op.target
                        if resolution.misfetch:
                            fetch_stall += {config.misfetch_penalty}
                            c_misfetch += 1
                            c_mfstall += {config.misfetch_penalty}
                        break
                    fetch_pc = pc + {INSTRUCTION_BYTES}
                    if resolution.misfetch:
                        fetch_stall += {config.misfetch_penalty}
                        c_misfetch += 1
                        c_mfstall += {config.misfetch_penalty}
                        break
                else:
                    fetch_pc = pc + {INSTRUCTION_BYTES}
""")

    # ---- occupancy sampling + return ----
    emit("""
        n = len(ifq)
        ifq_tot += n
        if n > ifq_peak:
            ifq_peak = n
        n = len(rob)
        rob_tot += n
        if n > rob_peak:
            rob_peak = n
        n = len(lsq)
        lsq_tot += n
        if n > lsq_peak:
            lsq_peak = n
    return (cycle, c_commit, c_fetched, c_fwp, c_disc, c_cons,
            c_branches, c_loads, c_stores, c_mispred, c_misfetch,
            c_taken, c_diverge, c_fwd, c_dacc, c_dmiss, c_iacc,
            c_imiss, c_fstall, c_mfstall, c_rstall,
            ifq_tot, ifq_peak, rob_tot, rob_peak, lsq_tot, lsq_peak)
""")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Codegen cache: one compiled run_trace per (config content, variant).
# ----------------------------------------------------------------------

_CODEGEN_LOCK = threading.Lock()
_CODEGEN_CACHE: dict[tuple, Callable] = {}
_CODEGEN_COUNTS = {"hits": 0, "misses": 0}


def engine_cache_key(
    config: ProcessorConfig,
    *,
    update_at_commit: bool,
    wrong_path: bool,
    inline_source: bool,
) -> tuple:
    """The in-process memoization key: a content hash of the config
    plus the statically-resolved variant axes."""
    return (
        canonical_digest(config_to_dict(config)),
        bool(update_at_commit),
        bool(wrong_path),
        bool(inline_source),
    )


def compile_engine(
    config: ProcessorConfig,
    *,
    update_at_commit: bool = True,
    wrong_path: bool = True,
    inline_source: bool = True,
) -> Callable:
    """Return the compiled ``run_trace`` for this config + variant,
    generating and ``exec``-compiling it on first use (thread-safe:
    backends sharing the process share the cache)."""
    key = engine_cache_key(
        config,
        update_at_commit=update_at_commit,
        wrong_path=wrong_path,
        inline_source=inline_source,
    )
    with _CODEGEN_LOCK:
        fn = _CODEGEN_CACHE.get(key)
        if fn is not None:
            _CODEGEN_COUNTS["hits"] += 1
            return fn
        _CODEGEN_COUNTS["misses"] += 1
        source = _engine_source(
            config,
            update_at_commit=update_at_commit,
            wrong_path=wrong_path,
            inline_source=inline_source,
        )
        namespace = {
            "_Op": _Op,
            "_deque": deque,
            "_MemoryRecord": MemoryRecord,
            "_BranchRecord": BranchRecord,
            "_FU_LOAD": FuClass.LOAD,
            "_FU_STORE": FuClass.STORE,
            "_FU_MUL": FuClass.MUL,
            "_FU_DIV": FuClass.DIV,
            "SpecializationError": SpecializationError,
        }
        code = compile(source, f"<specialized-engine {key[0][:12]}>", "exec")
        exec(code, namespace)  # noqa: S102 - the source is generated above
        fn = namespace["run_trace"]
        fn.__resim_generated_source__ = source  # debuggability
        _CODEGEN_CACHE[key] = fn
        return fn


def codegen_cache_info() -> dict:
    """Hit/miss/size counters for the in-process codegen cache."""
    with _CODEGEN_LOCK:
        return {
            "hits": _CODEGEN_COUNTS["hits"],
            "misses": _CODEGEN_COUNTS["misses"],
            "entries": len(_CODEGEN_CACHE),
        }


def clear_codegen_cache() -> None:
    """Drop all compiled engines (test isolation)."""
    with _CODEGEN_LOCK:
        _CODEGEN_CACHE.clear()
        _CODEGEN_COUNTS["hits"] = 0
        _CODEGEN_COUNTS["misses"] = 0


# ----------------------------------------------------------------------
# The specialized engine wrapper.
# ----------------------------------------------------------------------

_RAW_COUNTERS = (
    "major_cycles", "committed_instructions", "fetched_instructions",
    "fetched_wrong_path", "discarded_wrong_path",
    "trace_records_consumed", "committed_branches", "committed_loads",
    "committed_stores", "mispredictions", "misfetches",
    "taken_branches", "prediction_divergence", "load_forwards",
    "dcache_accesses", "dcache_misses", "icache_accesses",
    "icache_misses", "fetch_stall_cycles", "misfetch_stall_cycles",
    "recovery_stall_cycles",
)


def _stats_from_raw(raw: tuple) -> SimulationStatistics:
    """Rebuild the exact reference statistics object from the counter
    tuple a generated engine returns.

    Exactness: every generated counter is a sum of non-negative int
    increments, and ``Counter64`` masks to 64 bits at construction —
    addition then masking equals masked addition, so the local-int
    accumulation commutes with the reference's per-increment masking.
    """
    cycles = raw[0]
    counters = {
        name: Counter64(raw[index])
        for index, name in enumerate(_RAW_COUNTERS)
    }
    return SimulationStatistics(
        **counters,
        ifq_occupancy=OccupancySampler(
            total=raw[21], samples=cycles, peak=raw[22]),
        rob_occupancy=OccupancySampler(
            total=raw[23], samples=cycles, peak=raw[24]),
        lsq_occupancy=OccupancySampler(
            total=raw[25], samples=cycles, peak=raw[26]),
    )


class SpecializedEngine:
    """Drives one compiled fast-path engine over one trace.

    Exposes the slice of the reference engine surface the session
    layer drives (``run``, ``stats``, ``config``, ``predictor``,
    ``source``); step-wise driving and observers are reference-tier
    features, guarded at tier selection.  Each instance runs once:
    the generated function consumes the source in one call.
    """

    name = "specialized"
    tier = "specialized"

    def __init__(
        self,
        config: ProcessorConfig,
        trace: Sequence[TraceRecord] | TraceSource,
        start_pc: int | None = None,
        update_predictor_at_commit: bool = True,
        *,
        wrong_path_free: bool = False,
    ) -> None:
        self._config = config
        source = as_source(trace)
        self._source = source
        self._records = None
        if isinstance(source, InMemorySource) and source.consumed == 0:
            # Fast path: index the sequence directly, skipping the
            # cursor method calls (live-length semantics preserved).
            self._records = source.records
        self._start_pc = TEXT_BASE if start_pc is None else start_pc
        self._update_at_commit = update_predictor_at_commit
        self._bpred = BranchPredictorUnit(config.predictor)
        self._memory = (
            None if config.perfect_memory
            else MemorySystem(config.icache, config.dcache,
                              config.memory_latency))
        self._ran = False
        self.stats = SimulationStatistics()
        self._run_fn = compile_engine(
            config,
            update_at_commit=update_predictor_at_commit,
            wrong_path=not wrong_path_free,
            inline_source=self._records is not None,
        )

    @property
    def config(self) -> ProcessorConfig:
        return self._config

    @property
    def predictor(self) -> BranchPredictorUnit:
        return self._bpred

    @property
    def source(self) -> TraceSource:
        return self._source

    @property
    def total_records(self) -> int:
        return self._source.total_records

    @property
    def generated_source(self) -> str:
        """The generated Python source (debugging/inspection)."""
        return self._run_fn.__resim_generated_source__

    def run(
        self,
        max_cycles: int | None = None,
        *,
        warmup_instructions: int = 0,
        roi_instructions: int | None = None,
        stop_when: Callable | None = None,
    ) -> SimulationResult:
        """Simulate until the trace is drained; same contract and
        default cycle budget as the reference ``run()``."""
        if (warmup_instructions or roi_instructions is not None
                or stop_when is not None):
            raise SpecializationError(
                "the specialized engine compiles out instrumentation "
                "windows; warmup/ROI/stop_when runs use the reference "
                "engine (tier selection falls back automatically)")
        if self._ran:
            raise SpecializationError(
                "a SpecializedEngine runs once; build a fresh engine "
                "to re-run")
        self._ran = True
        if max_cycles is None:
            max_cycles = 64 * max(1, self._source.total_records) + 10_000
        trace = self._records if self._records is not None else self._source
        raw = self._run_fn(trace, self._start_pc, self._bpred,
                           self._memory, max_cycles)
        if self._records is not None:
            # Keep the wrapped cursor consistent with consumption.
            while not self._source.exhausted:
                self._source.next()
        self.stats = _stats_from_raw(raw)
        return SimulationResult(config=self._config, stats=self.stats)


# ----------------------------------------------------------------------
# Tier registry + selection.
# ----------------------------------------------------------------------

ENGINES: Registry = Registry("engine tier")


@ENGINES.register("reference")
class ReferenceEngineTier:
    """The interpreted oracle: supports every request."""

    name = "reference"

    @staticmethod
    def supports(request: EngineRequest) -> bool:
        return True

    @staticmethod
    def build(request: EngineRequest) -> ReSimEngine:
        engine = ReSimEngine(
            request.config,
            request.trace,
            start_pc=request.start_pc,
            update_predictor_at_commit=request.update_predictor_at_commit,
        )
        for observer in request.observers:
            engine.add_observer(observer)
        return engine


@ENGINES.register("specialized")
class SpecializedEngineTier:
    """exec-compiled per-config fast path, bit-identical to reference.

    Declines (falling back to the reference tier) when the request
    carries observers or instrumentation windows — those hooks are
    compiled out — or when the config is a subclass of
    :class:`ProcessorConfig` / uses subclassed cache configs, whose
    overridden behaviour the generator cannot see.
    """

    name = "specialized"

    @staticmethod
    def supports(request: EngineRequest) -> bool:
        if request.observers:
            return False
        if (request.warmup_instructions
                or request.roi_instructions is not None
                or request.stop_when is not None):
            return False
        config = request.config
        if type(config) is not ProcessorConfig:
            return False
        if type(config.icache) is not CacheConfig:
            return False
        if type(config.dcache) is not CacheConfig:
            return False
        return True

    @staticmethod
    def build(request: EngineRequest) -> SpecializedEngine:
        return SpecializedEngine(
            request.config,
            request.trace,
            start_pc=request.start_pc,
            update_predictor_at_commit=request.update_predictor_at_commit,
            wrong_path_free=request.wrong_path_free,
        )


def create_engine(
    name: str, request: EngineRequest
) -> ReSimEngine | SpecializedEngine:
    """Build the requested tier's engine for this run, transparently
    falling back to the reference tier when the request cannot be
    specialized (the fallback is behaviour-preserving: both tiers are
    bit-identical)."""
    tier = ENGINES.get(name)
    if not tier.supports(request):
        tier = ENGINES.get("reference")
    return tier.build(request)


def selected_tier(name: str, request: EngineRequest) -> str:
    """The tier :func:`create_engine` would actually use."""
    tier = ENGINES.get(name)
    if not tier.supports(request):
        return "reference"
    return tier.name
