"""The ReSim trace-driven timing engine.

One :class:`ReSimEngine` consumes a tagged B/M/O trace and advances the
simulated out-of-order processor one **major cycle** at a time.  The
stage semantics follow Section III of the paper:

* **Fetch** — consumes trace records into the IFQ until a control-flow
  bubble (taken branch, misprediction, misfetch) or the IFQ fills;
  accesses the I-cache once per line; resolves branch targets against
  the BTB/RAS and directions against the direction predictor; detects
  *misfetches* (predicted taken, wrong target → penalty, continue) and
  enters wrong-path fetch on mispredictions.
* **Dispatch** — moves instructions from the decouple buffer into the
  Reorder Buffer (and LSQ for memory ops) and renames their registers.
* **Issue** — schedules ready instructions onto functional units
  (4xALU/1xMUL/1xDIV by default); loads need the `Lsq_refresh` verdict
  and a memory read port unless their value was forwarded in the LSQ.
* **Writeback** — selects the oldest completed instructions and
  broadcasts, waking dependents (which may issue in the same major
  cycle, exactly the dependence chain that shapes the minor-cycle
  pipeline in Figures 2-4).
* **Commit** — retires in order; releases stores to memory when a
  write port is available; updates the branch predictor; triggers
  mis-speculation recovery when the mispredicted branch retires
  (tagged records not yet fetched are discarded, per Section V.A).
* **Lsq_refresh** — once per major cycle, resolves memory dependences
  and marks loads ready / forwarded.

Within one major cycle the stages run in reverse pipeline order
(Commit, Writeback, Lsq_refresh, Issue, Dispatch, Fetch) so that every
inter-stage effect takes one simulated cycle, except the intended
same-cycle paths: wakeup→issue (the paper's pipelined-control trick)
and commit→dispatch reuse of reorder-buffer slots.  An instruction
that completes in cycle T may commit no earlier than T+1 — the paper's
same-major-cycle flag (:meth:`~repro.core.inflight.InFlightOp.committable`).

Wrong-path handling is **trace-authoritative**: the presence of a
tagged block after a branch record *is* the misprediction signal
(the generator injected it with the same predictor configuration).
The engine still runs its own predictor for misfetch detection and
statistics; by default it trains it at Commit as the paper specifies,
which can diverge from the generator's program-order training when
several branches are in flight — counted in
``stats.prediction_divergence`` (and exactly zero when
``update_predictor_at_commit=False``, the property the test suite
checks).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.bpred.unit import BranchPredictorUnit, BranchResolution
from repro.cache.hierarchy import MemorySystem, PerfectMemory
from repro.core.config import ProcessorConfig
from repro.core.fu import FunctionalUnitPool
from repro.core.inflight import InFlightOp, OpState
from repro.core.rename import RenameTable
from repro.core.stats import SimulationStatistics
from repro.isa.instruction import INSTRUCTION_BYTES
from repro.isa.opcodes import BranchKind, FuClass
from repro.isa.program import TEXT_BASE
from repro.trace.record import BranchRecord, TraceRecord
from repro.trace.source import TraceSource, as_source
from repro.utils.queues import CircularQueue


class EngineObserver:
    """Instrumentation hooks into one engine run.

    Subclass and override any subset; un-overridden hooks are never
    dispatched (the engine collects only overridden methods at attach
    time, and the hot loop pays a single falsy check per cycle when no
    observers are registered — benchmarked in
    ``benchmarks/bench_engine.py``).

    Hooks fire *after* the event they describe:

    * :meth:`on_cycle` — once per major cycle, after all six stages;
    * :meth:`on_commit` — once per architecturally committed
      instruction (wrong-path ops never commit, so never appear);
    * :meth:`on_recovery` — once per mis-speculation recovery, with
      the faulting branch, after the pipeline is flushed and fetch is
      redirected.

    Observers may read any public engine state (``engine.cycle``,
    ``engine.stats``, ``engine.predictor``...) but must not mutate it.
    """

    def on_cycle(self, engine: ReSimEngine) -> None:
        """Called after every major cycle."""

    def on_commit(self, engine: ReSimEngine, op: InFlightOp) -> None:
        """Called for every committed instruction."""

    def on_recovery(self, engine: ReSimEngine,
                    branch: InFlightOp) -> None:
        """Called when a mispredicted branch retires and recovers."""


@dataclass
class SimulationResult:
    """Outcome of one engine run (counts only; throughput and wall
    clock are derived by :mod:`repro.perf` from the minor-cycle
    pipeline and FPGA device models)."""

    config: ProcessorConfig
    stats: SimulationStatistics

    @property
    def major_cycles(self) -> int:
        return int(self.stats.major_cycles)

    @property
    def ipc(self) -> float:
        return self.stats.ipc


class ReSimEngine:
    """Simulates the timing of one trace on one processor configuration.

    Parameters
    ----------
    config:
        The simulated processor.
    trace:
        Tagged record stream: either a
        :class:`~repro.trace.source.TraceSource` (streamed file,
        shard concatenation, growing in-memory FIFO) or a plain
        record sequence, which is wrapped in an
        :class:`~repro.trace.source.InMemorySource`.  Both paths run
        the same fetch code and produce bit-identical statistics; the
        predictor configuration used at generation must match
        ``config.predictor``.
    start_pc:
        PC of the first record (``None`` means the text base) — used
        for I-cache indexing and predictor lookups.
    update_predictor_at_commit:
        True (paper behaviour): train the predictor when branches
        retire.  False: train at fetch, which makes the engine's
        predictor agree with the generator's bit-for-bit.
    """

    def __init__(
        self,
        config: ProcessorConfig,
        trace: Sequence[TraceRecord] | TraceSource,
        start_pc: int | None = None,
        update_predictor_at_commit: bool = True,
    ) -> None:
        self._config = config
        self._source = as_source(trace)
        self._cycle = 0
        self._seq = 0
        self._update_at_commit = update_predictor_at_commit

        self._ifq: CircularQueue[InFlightOp] = CircularQueue(config.ifq_entries)
        self._decouple: CircularQueue[InFlightOp] = CircularQueue(config.width)
        self._rob: CircularQueue[InFlightOp] = CircularQueue(config.rob_entries)
        self._lsq: CircularQueue[InFlightOp] = CircularQueue(config.lsq_entries)
        self._rename = RenameTable()
        self._fus = FunctionalUnitPool(config)
        self._bpred = BranchPredictorUnit(config.predictor)
        self._memory = (PerfectMemory() if config.perfect_memory
                        else MemorySystem(config.icache, config.dcache,
                                          config.memory_latency))

        #: producer seq → consumers waiting on it
        self._consumers: dict[int, list[InFlightOp]] = {}

        # Fetch state.
        self._fetch_pc = TEXT_BASE if start_pc is None else start_pc
        self._fetch_stall = 0
        self._speculative = False          # consuming a tagged block
        self._spec_pc = 0                  # wrong-path fetch PC
        self._spec_branch_seq = -1         # branch awaiting resolution
        self._last_fetch_line = -1         # fetch line buffer

        # Instrumentation: hook tuples stay empty () unless an
        # observer overriding the respective method is attached, so
        # the guarded dispatch below is one falsy check.
        self._observers: list[EngineObserver] = []
        self._cycle_hooks: tuple = ()
        self._commit_hooks: tuple = ()
        self._recovery_hooks: tuple = ()

        self.stats = SimulationStatistics()

        # A source that opens mid-stream — a segment-range shard of a
        # larger trace (``FileSource(path, segments=(lo, hi))``) — may
        # begin inside a wrong-path block whose faulting branch lives
        # in the previous shard.  Fetch asserts tagged records appear
        # only during speculative fetch, so drain the block's tail
        # here exactly as recovery would have: counted as discarded
        # wrong-path records and consumed trace records, with the
        # misprediction itself left to whichever run fetched the
        # branch.  Traces always start on the correct path, so this is
        # a no-op for every non-shard source (including a still-empty
        # streaming co-simulation FIFO).
        self._drain_wrong_path()

    def _drain_wrong_path(self) -> None:
        """Discard the tagged block at the cursor, counting each
        record as discarded and consumed — shared by mis-speculation
        recovery and the cold mid-stream start above, which must keep
        identical bookkeeping for shard sums to stay exact."""
        while self._source.peek_is_tagged():
            self._source.next()
            self.stats.discarded_wrong_path.increment()
            self.stats.trace_records_consumed.increment()

    # ------------------------------------------------------------------
    # Public driving interface
    # ------------------------------------------------------------------

    @property
    def config(self) -> ProcessorConfig:
        return self._config

    @property
    def cycle(self) -> int:
        return self._cycle

    @property
    def predictor(self) -> BranchPredictorUnit:
        return self._bpred

    @property
    def memory(self) -> PerfectMemory | MemorySystem:
        return self._memory

    @property
    def source(self) -> TraceSource:
        """The trace cursor feeding fetch."""
        return self._source

    @property
    def cursor_position(self) -> int:
        """Trace records consumed so far (streaming drivers use this
        to keep the input FIFO's lookahead topped up)."""
        return self._source.consumed

    @property
    def total_records(self) -> int:
        """The source's current stream-length estimate (exact for
        files; the live length for growing in-memory streams)."""
        return self._source.total_records

    @property
    def done(self) -> bool:
        """All records consumed and the pipeline drained."""
        return (self._source.exhausted
                and self._rob.is_empty
                and self._ifq.is_empty
                and self._decouple.is_empty)

    @property
    def observers(self) -> tuple[EngineObserver, ...]:
        return tuple(self._observers)

    def add_observer(self, observer: EngineObserver) -> None:
        """Attach instrumentation hooks to this engine.

        Only the methods ``observer``'s class actually overrides are
        dispatched; attaching an observer that overrides nothing costs
        nothing.
        """
        self._observers.append(observer)
        self._rebuild_hooks()

    def remove_observer(self, observer: EngineObserver) -> None:
        self._observers.remove(observer)
        self._rebuild_hooks()

    def _rebuild_hooks(self) -> None:
        base = EngineObserver
        self._cycle_hooks = tuple(
            obs.on_cycle for obs in self._observers
            if type(obs).on_cycle is not base.on_cycle)
        self._commit_hooks = tuple(
            obs.on_commit for obs in self._observers
            if type(obs).on_commit is not base.on_commit)
        self._recovery_hooks = tuple(
            obs.on_recovery for obs in self._observers
            if type(obs).on_recovery is not base.on_recovery)

    def run(
        self,
        max_cycles: int | None = None,
        *,
        warmup_instructions: int = 0,
        roi_instructions: int | None = None,
        stop_when=None,
    ) -> SimulationResult:
        """Simulate until the trace is drained (or the ROI ends).

        ``max_cycles`` guards against pathological configurations; the
        default allows a very conservative 64 cycles per record.

        Instrumentation-window controls (all default to off, leaving
        the classic run-to-drain behaviour bit-identical):

        ``warmup_instructions``
            Fast-forward: simulate until this many instructions have
            committed, then reset the statistics while keeping all
            microarchitectural state (predictor, caches, in-flight
            window) warm.  The returned statistics cover only the
            post-warmup region.
        ``roi_instructions``
            Region of interest: stop once this many instructions have
            committed *after* warmup, even if trace records remain.
        ``stop_when``
            Early-stop predicate, called with the engine after each
            cycle; simulation stops when it returns true.
        """
        if max_cycles is None:
            max_cycles = 64 * max(1, self._source.total_records) + 10_000
        if warmup_instructions < 0:
            raise ValueError("warmup_instructions must be >= 0")
        if roi_instructions is not None and roi_instructions <= 0:
            raise ValueError("roi_instructions must be positive")

        if warmup_instructions:
            while (not self.done
                   and int(self.stats.committed_instructions)
                   < warmup_instructions):
                self._check_cycle_budget(max_cycles)
                self.step()
            self.stats = SimulationStatistics()

        if roi_instructions is None and stop_when is None:
            # The hot path: identical to the pre-instrumentation loop.
            while not self.done:
                self._check_cycle_budget(max_cycles)
                self.step()
        else:
            while not self.done:
                self._check_cycle_budget(max_cycles)
                self.step()
                if (roi_instructions is not None
                        and int(self.stats.committed_instructions)
                        >= roi_instructions):
                    break
                if stop_when is not None and stop_when(self):
                    break
        return SimulationResult(config=self._config, stats=self.stats)

    def _check_cycle_budget(self, max_cycles: int) -> None:
        if self._cycle >= max_cycles:
            raise RuntimeError(
                f"simulation exceeded {max_cycles} cycles "
                f"({self._source.consumed}/{self._source.total_records} "
                f"records consumed)"
            )

    def step(self) -> None:
        """Advance exactly one major cycle."""
        self._cycle += 1
        self.stats.major_cycles.increment()
        self._fus.begin_cycle()

        self._commit()
        self._writeback()
        self._lsq_refresh()
        self._issue()
        self._dispatch()
        self._fetch()

        self.stats.ifq_occupancy.sample(len(self._ifq))
        self.stats.rob_occupancy.sample(len(self._rob))
        self.stats.lsq_occupancy.sample(len(self._lsq))

        if self._cycle_hooks:
            for hook in self._cycle_hooks:
                hook(self)

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------

    def _commit(self) -> None:
        committed = 0
        write_ports_used = 0
        while committed < self._config.width and not self._rob.is_empty:
            op = self._rob.peek()
            assert not op.is_wrong_path, (
                "wrong-path op reached the commit point; recovery must "
                "remove tagged entries when the faulting branch retires"
            )
            if not op.committable(self._cycle):
                break

            if op.is_store:
                if write_ports_used >= self._config.mem_write_ports:
                    break  # no memory write port: stall commit
                write_ports_used += 1
                result = self._memory.dwrite(op.address)
                self.stats.dcache_accesses.increment()
                if not result.hit:
                    self.stats.dcache_misses.increment()

            self._rob.pop()
            if op.is_mem:
                head = self._lsq.pop()
                assert head is op, "LSQ and ROB disagree on memory order"
            op.state = OpState.COMMITTED
            op.committed_cycle = self._cycle
            self._rename.retire(op)
            self._consumers.pop(op.seq, None)

            self.stats.committed_instructions.increment()
            if op.is_load:
                self.stats.committed_loads.increment()
            elif op.is_store:
                self.stats.committed_stores.increment()
            elif op.is_branch:
                self._commit_branch(op)
                committed += 1
                if self._commit_hooks:
                    for hook in self._commit_hooks:
                        hook(self, op)
                if op.seq == self._spec_branch_seq:
                    self._recover_from_misprediction(op)
                    return  # pipeline flushed; stop committing
                continue
            if self._commit_hooks:
                for hook in self._commit_hooks:
                    hook(self, op)
            committed += 1

    def _commit_branch(self, op: InFlightOp) -> None:
        record = op.record
        assert isinstance(record, BranchRecord)
        self.stats.committed_branches.increment()
        if record.taken:
            self.stats.taken_branches.increment()
        resolution = op.branch_resolution
        assert resolution is None or isinstance(resolution, BranchResolution)
        if self._update_at_commit:
            self._bpred.update(
                op.pc, record.branch_kind, record.taken, record.target,
                resolution,
            )

    def _recover_from_misprediction(self, branch: InFlightOp) -> None:
        """Flush the wrong path once the faulting branch retires.

        Everything younger in flight is tagged wrong-path (the trace
        generator places the block immediately after the branch, and
        correct-path fetch resumes only now).  Tagged records not yet
        fetched are discarded, per the paper.
        """
        squashed = self._rob.remove_from_tail(len(self._rob))
        for op in squashed:
            assert op.is_wrong_path, "correct-path op squashed in recovery"
            op.state = OpState.SQUASHED
            self._consumers.pop(op.seq, None)
        self._lsq.clear()
        self._ifq.clear()
        self._decouple.clear()
        self._rename.squash_wrong_path()

        # Discard the rest of the tagged block.
        self._drain_wrong_path()

        # Redirect fetch to the correct path.
        record = branch.record
        assert isinstance(record, BranchRecord)
        self._fetch_pc = (record.target if record.taken
                          else branch.pc + INSTRUCTION_BYTES)
        self._speculative = False
        self._spec_branch_seq = -1
        self._fetch_stall += self._config.misspeculation_penalty
        self.stats.recovery_stall_cycles.increment(
            self._config.misspeculation_penalty
        )
        self.stats.mispredictions.increment()
        if self._recovery_hooks:
            for hook in self._recovery_hooks:
                hook(self, branch)

    # ------------------------------------------------------------------
    # Writeback
    # ------------------------------------------------------------------

    def _writeback(self) -> None:
        remaining = self._config.width
        for op in self._rob:
            if remaining == 0:
                break
            if (op.state is OpState.ISSUED
                    and op.execution_done_cycle <= self._cycle):
                op.state = OpState.COMPLETED
                op.completed_cycle = self._cycle
                remaining -= 1
                for consumer in self._consumers.pop(op.seq, ()):
                    if consumer.state is not OpState.SQUASHED:
                        consumer.waiting_on.discard(op.seq)

    # ------------------------------------------------------------------
    # Lsq_refresh (once per major cycle, before Issue)
    # ------------------------------------------------------------------

    def _lsq_refresh(self) -> None:
        """Resolve memory dependences: mark loads ready or forwarded.

        Conservative (non-speculative) disambiguation, as in
        sim-outorder: a load waits while any older store's address is
        unresolved; an address-matching older store must have its data
        before the load can be satisfied — by forwarding, without a
        memory access.
        """
        older_stores: list[InFlightOp] = []
        for op in self._lsq:
            if op.is_store:
                older_stores.append(op)
                continue
            # Load.
            if op.state is not OpState.DISPATCHED or op.memory_ready:
                continue
            if not op.operands_ready:
                continue  # address not computable yet
            op.address_ready = True
            # Scan older stores youngest-first: the first unresolved
            # address blocks disambiguation; the first resolved match
            # is the forwarding candidate.
            verdict = "memory"
            for store in reversed(older_stores):
                resolved = store.state in (OpState.ISSUED, OpState.COMPLETED)
                if not resolved:
                    verdict = "blocked"
                    break
                if (store.address >> 2) == (op.address >> 2):
                    verdict = ("forward"
                               if store.state is OpState.COMPLETED
                               else "blocked")
                    break
            if verdict == "memory":
                op.memory_ready = True
            elif verdict == "forward":
                op.memory_ready = True
                op.forwarded = True

    # ------------------------------------------------------------------
    # Issue
    # ------------------------------------------------------------------

    def _issue(self) -> None:
        remaining = self._config.width
        read_ports_used = 0
        for op in self._rob:
            if remaining == 0:
                break
            if op.state is not OpState.DISPATCHED:
                continue
            if not op.operands_ready:
                continue

            if op.is_load:
                if not op.memory_ready:
                    continue
                if op.forwarded:
                    # Value satisfied in the LSQ: no read port, no cache.
                    latency = 1
                    self.stats.load_forwards.increment()
                else:
                    if read_ports_used >= self._config.mem_read_ports:
                        continue
                    read_ports_used += 1
                    result = self._memory.dread(op.address)
                    self.stats.dcache_accesses.increment()
                    if not result.hit:
                        self.stats.dcache_misses.increment()
                    latency = result.latency
            else:
                if not self._fus.can_issue(op.fu, self._cycle):
                    continue
                latency = self._fus.issue(op.fu, self._cycle)

            op.state = OpState.ISSUED
            op.issued_cycle = self._cycle
            op.execution_done_cycle = self._cycle + latency
            remaining -= 1

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _dispatch(self) -> None:
        dispatched = 0
        while dispatched < self._config.width and not self._decouple.is_empty:
            op = self._decouple.peek(0)
            if self._rob.is_full:
                break
            if op.is_mem and self._lsq.is_full:
                break
            self._decouple.pop()
            self._rob.push(op)
            if op.is_mem:
                self._lsq.push(op)

            for register in op.record.src_registers():
                producer = self._rename.pending_dependency(register)
                if producer is not None:
                    op.waiting_on.add(producer.seq)
                    self._consumers.setdefault(producer.seq, []).append(op)
            for register in op.record.dest_registers():
                self._rename.define(register, op)

            op.state = OpState.DISPATCHED
            op.dispatched_cycle = self._cycle
            dispatched += 1

    # ------------------------------------------------------------------
    # Fetch
    # ------------------------------------------------------------------

    def _fetch(self) -> None:
        # Hand the oldest IFQ entries to Dispatch through the decouple
        # buffer (their overlap is what the buffer decouples).
        moved = 0
        while (moved < self._config.width
               and not self._decouple.is_full
               and not self._ifq.is_empty):
            self._decouple.push(self._ifq.pop())
            moved += 1

        if self._fetch_stall > 0:
            self._fetch_stall -= 1
            self.stats.fetch_stall_cycles.increment()
            return

        fetched = 0
        while fetched < self._config.width and not self._ifq.is_full:
            record = self._source.peek()
            if record is None:
                break
            if self._speculative:
                if not record.tag:
                    break  # wrong-path block exhausted: fetch starves
                if not self._icache_fetch(self._spec_pc):
                    break
                op = self._admit(record, self._spec_pc)
                self.stats.fetched_wrong_path.increment()
                self._spec_pc += INSTRUCTION_BYTES
                fetched += 1
                continue

            assert not record.tag, (
                "tagged record outside speculative fetch; trace and "
                "engine disagree about a misprediction"
            )
            pc = self._fetch_pc
            if not self._icache_fetch(pc):
                break
            op = self._admit(record, pc)
            fetched += 1
            if isinstance(record, BranchRecord):
                bubble = self._fetch_branch(op, record, pc)
                if bubble:
                    break
            else:
                self._fetch_pc = pc + INSTRUCTION_BYTES

    def _admit(self, record: TraceRecord, pc: int) -> InFlightOp:
        """Consume one trace record into the IFQ."""
        op = InFlightOp(seq=self._seq, record=record, pc=pc)
        self._seq += 1
        self._source.next()
        op.fetched_cycle = self._cycle
        self._ifq.push(op)
        self.stats.fetched_instructions.increment()
        self.stats.trace_records_consumed.increment()
        return op

    def _fetch_branch(self, op: InFlightOp, record: BranchRecord,
                      pc: int) -> bool:
        """Resolve a correct-path branch at fetch; True = fetch bubble."""
        resolution = self._bpred.resolve(
            pc, record.branch_kind, record.taken, record.target
        )
        op.branch_resolution = resolution
        if not self._update_at_commit:
            self._bpred.update(pc, record.branch_kind, record.taken,
                               record.target, resolution)

        tagged_next = self._source.peek_is_tagged()
        if resolution.mispredicted != tagged_next:
            # The engine's predictor state has drifted from the
            # generator's (possible with commit-time training while
            # several branches are in flight).  The trace is
            # authoritative.
            self.stats.prediction_divergence.increment()

        if tagged_next:
            # Misprediction: fetch continues down the tagged block.
            self._speculative = True
            self._spec_branch_seq = op.seq
            if resolution.wrong_path_start is not None:
                self._spec_pc = resolution.wrong_path_start
            elif record.taken:
                self._spec_pc = pc + INSTRUCTION_BYTES
            else:
                self._spec_pc = record.target
            # Correct-path resumption PC is set at recovery.
            return True

        if record.taken:
            self._fetch_pc = record.target
            if resolution.misfetch:
                self._fetch_stall += self._config.misfetch_penalty
                self.stats.misfetches.increment()
                self.stats.misfetch_stall_cycles.increment(
                    self._config.misfetch_penalty
                )
            return True  # taken branch: control-flow bubble ends the cycle

        self._fetch_pc = pc + INSTRUCTION_BYTES
        if resolution.misfetch:
            # Predicted taken, actually not taken, with a bogus target:
            # fetch went astray and must re-steer.
            self._fetch_stall += self._config.misfetch_penalty
            self.stats.misfetches.increment()
            self.stats.misfetch_stall_cycles.increment(
                self._config.misfetch_penalty
            )
            return True
        return False

    def _icache_fetch(self, pc: int) -> bool:
        """Access the I-cache once per fetch line.

        Returns True when the instruction at ``pc`` can be delivered
        this cycle; on a miss, charges the stall and returns False (the
        record stays in the trace for the post-stall retry, by which
        time the line is resident).
        """
        if self._config.perfect_memory:
            line = pc // 64
            if line != self._last_fetch_line:
                self._last_fetch_line = line
                self._memory.ifetch(pc)
                self.stats.icache_accesses.increment()
            return True
        line = pc // self._config.icache.block_bytes
        if line == self._last_fetch_line:
            return True
        result = self._memory.ifetch(pc)
        self.stats.icache_accesses.increment()
        self._last_fetch_line = line
        if result.hit:
            return True
        self.stats.icache_misses.increment()
        self._fetch_stall += result.latency - 1
        return False
