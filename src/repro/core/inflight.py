"""In-flight dynamic instruction state.

One :class:`InFlightOp` exists per trace record between Fetch and
Commit (or squash).  Since ReSim is trace-driven it tracks *timing
state only* — no values, just readiness, occupancy, and completion
bookkeeping.  The ``completed_cycle`` field implements the paper's
same-major-cycle flag: *"We use a flag to prevent Commit from
considering such instructions within the same major cycle — despite
the fact that the instructions may be marked completed."*
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.isa.opcodes import FuClass
from repro.trace.record import BranchRecord, MemoryRecord, TraceRecord


class OpState(enum.Enum):
    """Lifecycle of an in-flight instruction."""

    DISPATCHED = "dispatched"   # in ROB, waiting for operands/resources
    ISSUED = "issued"           # executing on a functional unit
    COMPLETED = "completed"     # result broadcast, awaiting commit
    COMMITTED = "committed"
    SQUASHED = "squashed"       # wrong-path, removed at recovery


@dataclass
class InFlightOp:
    """Timing state of one dynamic instruction."""

    seq: int                     # global fetch order, unique
    record: TraceRecord
    pc: int
    state: OpState = OpState.DISPATCHED
    fetched_cycle: int = -1
    dispatched_cycle: int = -1
    issued_cycle: int = -1
    execution_done_cycle: int = -1  # when the FU result is available
    completed_cycle: int = -1       # when Writeback broadcast it
    committed_cycle: int = -1

    #: Sequence numbers of producers this op still waits on.
    waiting_on: set[int] = field(default_factory=set)

    #: LSQ bookkeeping (memory ops only).
    address_ready: bool = False
    memory_ready: bool = False   # lsq_refresh verdict: may access memory
    forwarded: bool = False      # load value satisfied from an older store

    #: Fetch-time predictor resolution (branches only); consumed by
    #: Commit for predictor training and by the statistics unit.
    branch_resolution: object | None = None

    @property
    def is_wrong_path(self) -> bool:
        return self.record.tag

    @property
    def fu(self) -> FuClass:
        return self.record.fu

    @property
    def is_load(self) -> bool:
        return self.record.fu is FuClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.record.fu is FuClass.STORE

    @property
    def is_mem(self) -> bool:
        return isinstance(self.record, MemoryRecord)

    @property
    def is_branch(self) -> bool:
        return isinstance(self.record, BranchRecord)

    @property
    def address(self) -> int:
        """Effective address (memory records carry it in the trace)."""
        assert isinstance(self.record, MemoryRecord)
        return self.record.address

    @property
    def operands_ready(self) -> bool:
        return not self.waiting_on

    def committable(self, cycle: int) -> bool:
        """Eligible for commit in ``cycle``.

        Completed strictly earlier — the paper's flag keeps an
        instruction that completed via the early Writeback minor-cycle
        from committing within the same major cycle.
        """
        return (self.state is OpState.COMPLETED
                and self.completed_cycle < cycle)

    def __repr__(self) -> str:
        return (
            f"InFlightOp(seq={self.seq}, fu={self.fu.value}, "
            f"state={self.state.value}, pc={self.pc:#x}, "
            f"tag={self.record.tag})"
        )
