"""Simulated-processor configuration.

All the knobs of Section V.C in one frozen dataclass, with the two
configurations evaluated in Table 1 provided as constants:

* :data:`PAPER_4WIDE_PERFECT` — 4-issue, perfect memory, two-level
  branch predictor (Table 1 left; N+3 = 7 minor cycles);
* :data:`PAPER_2WIDE_CACHE` — 2-issue, 32 KB L1 I/D caches, perfect
  branch prediction, the FAST-comparison setup (Table 1 right;
  N+4 = 6 minor cycles).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.bpred.unit import PAPER_PREDICTOR, PERFECT_PREDICTOR, PredictorConfig
from repro.cache.cache import CacheConfig
from repro.isa.opcodes import FuClass


@dataclass(frozen=True)
class ProcessorConfig:
    """Full parameter set of the simulated out-of-order processor.

    Defaults reproduce the paper's evaluation machine: 4-way, 16
    reorder-buffer entries, 8 LSQ entries, four 1-cycle ALUs, one
    3-cycle multiplier, one 10-cycle divider, misfetch and
    mis-speculation penalties of 3 cycles.
    """

    width: int = 4                 # fetch/dispatch/issue/commit width N
    ifq_entries: int = 4
    rob_entries: int = 16
    lsq_entries: int = 8

    alu_count: int = 4
    alu_latency: int = 1
    mul_count: int = 1
    mul_latency: int = 3
    div_count: int = 1
    div_latency: int = 10

    mem_read_ports: int = 2        # loads issued to memory per cycle
    mem_write_ports: int = 1       # stores released at commit per cycle

    misfetch_penalty: int = 3
    misspeculation_penalty: int = 3

    predictor: PredictorConfig = PAPER_PREDICTOR

    perfect_memory: bool = True
    icache: CacheConfig = field(
        default_factory=lambda: CacheConfig(name="il1")
    )
    dcache: CacheConfig = field(
        default_factory=lambda: CacheConfig(name="dl1")
    )
    memory_latency: int = 18

    def __post_init__(self) -> None:
        for label, value in (
            ("width", self.width),
            ("ifq_entries", self.ifq_entries),
            ("rob_entries", self.rob_entries),
            ("lsq_entries", self.lsq_entries),
            ("alu_count", self.alu_count),
            ("mul_count", self.mul_count),
            ("div_count", self.div_count),
            ("alu_latency", self.alu_latency),
            ("mul_latency", self.mul_latency),
            ("div_latency", self.div_latency),
            ("memory_latency", self.memory_latency),
            ("mem_read_ports", self.mem_read_ports),
            ("mem_write_ports", self.mem_write_ports),
        ):
            if value <= 0:
                raise ValueError(f"{label} must be positive, got {value}")
        if self.rob_entries < self.width:
            raise ValueError("reorder buffer smaller than machine width")
        for label, value in (
            ("misfetch_penalty", self.misfetch_penalty),
            ("misspeculation_penalty", self.misspeculation_penalty),
        ):
            if value < 0:
                raise ValueError(f"{label} must be non-negative")

    # ------------------------------------------------------------------

    @property
    def memory_ports(self) -> int:
        """Total memory ports, the quantity the optimized pipeline bounds."""
        return self.mem_read_ports + self.mem_write_ports

    @property
    def supports_optimized_pipeline(self) -> bool:
        """Figure 4's N+3 organization needs at most N−1 memory ports."""
        return self.memory_ports <= self.width - 1

    def fu_latency(self, fu: FuClass) -> int:
        """Execution latency for one functional-unit class."""
        if fu is FuClass.MUL:
            return self.mul_latency
        if fu is FuClass.DIV:
            return self.div_latency
        return self.alu_latency  # ALU ops, branches, store address gen

    def fu_count(self, fu: FuClass) -> int:
        """Number of units of one class."""
        if fu is FuClass.MUL:
            return self.mul_count
        if fu is FuClass.DIV:
            return self.div_count
        return self.alu_count

    def describe(self) -> str:
        memory = ("perfect memory" if self.perfect_memory else
                  f"{self.icache.size_bytes // 1024}KB L1 I/D")
        return (
            f"{self.width}-way OoO, ROB {self.rob_entries}, "
            f"LSQ {self.lsq_entries}, {memory}, "
            f"{self.predictor.describe()}"
        )

    def with_width(self, width: int) -> ProcessorConfig:
        """Same machine at a different superscalar width."""
        return replace(self, width=width)


#: Table 1, left: 4-issue, perfect memory, two-level branch predictor.
PAPER_4WIDE_PERFECT = ProcessorConfig()

#: Table 1, right: 2-issue, 32 KB 8-way 64 B L1 caches, perfect BP —
#: the configuration used for the comparison with FAST.
PAPER_2WIDE_CACHE = ProcessorConfig(
    width=2,
    mem_read_ports=1,
    mem_write_ports=1,
    predictor=PERFECT_PREDICTOR,
    perfect_memory=False,
)
