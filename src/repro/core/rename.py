"""Rename table: architectural register → in-flight producer.

Accessed at Dispatch (Section III: "Dispatch allocates Load/Store
Queue and Reorder Buffer entries, and accesses the Rename Table").
Each entry points at the most recent in-flight producer of a register;
a dispatching consumer records a dependence if that producer has not
completed yet, then overwrites the entries of its own destinations.

Recovery is the simple whole-flush case: mis-speculation recovery runs
when the faulting branch is the oldest instruction (it is committing),
so *every* younger in-flight op is wrong-path and any entry pointing at
one can safely revert to "ready in the register file".
"""

from __future__ import annotations

from repro.core.inflight import InFlightOp, OpState
from repro.trace.record import TRACE_REG_LIMIT


class RenameTable:
    """Maps each trace-namespace register to its in-flight producer."""

    def __init__(self) -> None:
        self._producer: list[InFlightOp | None] = [None] * TRACE_REG_LIMIT

    def producer_of(self, register: int) -> InFlightOp | None:
        """Most recent in-flight producer, or None if the register file
        already holds the value."""
        return self._producer[register]

    def pending_dependency(self, register: int) -> InFlightOp | None:
        """The producer a new consumer must wait on, if any."""
        producer = self._producer[register]
        if producer is None:
            return None
        if producer.state in (OpState.COMPLETED, OpState.COMMITTED):
            return None
        return producer

    def define(self, register: int, op: InFlightOp) -> None:
        """Record ``op`` as the newest producer of ``register``."""
        self._producer[register] = op

    def retire(self, op: InFlightOp) -> None:
        """Clear entries still owned by a committing op."""
        for register, producer in enumerate(self._producer):
            if producer is op:
                self._producer[register] = None

    def squash_wrong_path(self) -> int:
        """Drop every entry owned by a wrong-path op (recovery).

        Returns the number of entries cleared.  Valid because recovery
        happens at the mispredicted branch's commit, when all younger
        in-flight ops are tagged wrong-path.
        """
        cleared = 0
        for register, producer in enumerate(self._producer):
            if producer is not None and producer.is_wrong_path:
                self._producer[register] = None
                cleared += 1
        return cleared

    def reset(self) -> None:
        self._producer = [None] * TRACE_REG_LIMIT
