"""ReSim's internal minor-cycle pipeline organizations (Figures 2-4).

ReSim executes the simulated processor *serially*: one **major cycle**
(simulated cycle) decomposes into several **minor cycles**, each
performing one stage-slot operation.  The paper develops three
organizations:

========== ==================== ============================== =========
figure      class                key idea                        latency
========== ==================== ============================== =========
Figure 2    SimplePipeline       WB → Lsq_refresh → N x (Issue,  2N+3
                                 Cache-Access) strictly chained
Figure 3    ImprovedPipeline     Writeback overlapped with Issue N+4
                                 via pipelined control (WB one
                                 cycle early); cache access
                                 before writeback
Figure 4    OptimizedPipeline    Lsq_refresh overlaps the first   N+3
                                 Issue slot (no load may issue
                                 in slot 0); requires <= N-1
                                 memory ports
========== ==================== ============================== =========

These models serve three purposes:

* the **latency formulas** convert the engine's major-cycle counts into
  minor cycles, and with an FPGA device's minor-cycle frequency into
  simulated wall-clock time and MIPS (Tables 1-3);
* the **schedules** regenerate the figures as ASCII timing diagrams
  (``render()``), with one column per minor cycle and one row per
  pipeline stage;
* the schedules are *checked*: a validator asserts that the
  architectural dependence chain of Section IV — Writeback before
  Lsq_refresh before load Issue within the simulated cycle, one
  operation per hardware block per minor cycle — holds for every N
  (the property tests sweep widths).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass


@dataclass(frozen=True)
class ScheduledOp:
    """One stage-slot operation placed on a minor cycle."""

    stage: str        # e.g. "issue", "writeback", "lsq_refresh", "cache"
    slot: int         # which of the N serial slots (0-based); -1 = whole
    minor_cycle: int  # offset within the major cycle


class MinorPipeline(abc.ABC):
    """One organization of ReSim's internal pipeline.

    Parameters
    ----------
    width:
        Simulated superscalar width N.
    """

    name = "abstract"
    figure = "-"

    def __init__(self, width: int) -> None:
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        self._width = width

    @property
    def width(self) -> int:
        return self._width

    @property
    @abc.abstractmethod
    def minor_cycles_per_major(self) -> int:
        """Latency of one major cycle, in minor cycles."""

    @abc.abstractmethod
    def schedule(self) -> list[ScheduledOp]:
        """Stage-slot operations of one major cycle."""

    # ------------------------------------------------------------------

    def total_minor_cycles(self, major_cycles: int) -> int:
        """Minor cycles needed to simulate ``major_cycles``.

        ReSim pipelines *across* major cycles (stage k of major cycle
        i+1 overlaps stage k+1 of major cycle i), so in steady state
        each major cycle costs exactly ``minor_cycles_per_major``; the
        pipeline fill adds a one-time start-up of the same length.
        """
        if major_cycles < 0:
            raise ValueError("major_cycles must be non-negative")
        if major_cycles == 0:
            return 0
        return (major_cycles * self.minor_cycles_per_major
                + self.minor_cycles_per_major)

    def validate(self) -> None:
        """Check structural and architectural constraints.

        * at most one operation per stage resource per minor cycle;
        * all operations fit inside the major cycle;
        * Writeback effects precede Lsq_refresh, which precedes the
          first load-capable Issue slot (the Section IV dependence
          chain) — each organization states which issue slots may
          carry loads via :meth:`first_load_slot`.
        """
        ops = self.schedule()
        limit = self.minor_cycles_per_major
        seen: set[tuple[str, int]] = set()
        for op in ops:
            if not 0 <= op.minor_cycle < limit:
                raise AssertionError(
                    f"{self.name}: {op} outside major cycle of {limit}"
                )
            key = (op.stage, op.minor_cycle)
            if key in seen:
                raise AssertionError(
                    f"{self.name}: structural hazard on {key}"
                )
            seen.add(key)

        refresh = [op for op in ops if op.stage == "lsq_refresh"]
        if len(refresh) != 1:
            raise AssertionError(
                f"{self.name}: Lsq_refresh must run exactly once per "
                f"major cycle, found {len(refresh)}"
            )
        first_load_issue = min(
            (op.minor_cycle for op in ops
             if op.stage == "issue" and op.slot >= self.first_load_slot()),
            default=None,
        )
        if (first_load_issue is not None
                and refresh[0].minor_cycle > first_load_issue):
            raise AssertionError(
                f"{self.name}: load issue at minor cycle "
                f"{first_load_issue} precedes Lsq_refresh at "
                f"{refresh[0].minor_cycle}"
            )

    def first_load_slot(self) -> int:
        """First issue slot allowed to carry a load (0-based)."""
        return 0

    def render(self) -> str:
        """ASCII timing diagram of one major cycle (the paper figure)."""
        ops = self.schedule()
        stages: list[str] = []
        for op in ops:
            label = op.stage if op.slot < 0 else f"{op.stage}{op.slot}"
            if label not in stages:
                stages.append(label)
        width = self.minor_cycles_per_major
        label_width = max(len(s) for s in stages) + 2
        header = " " * label_width + "".join(
            f"{i:>4}" for i in range(width)
        )
        lines = [
            f"{self.name} pipeline ({self.figure}), N={self._width}: "
            f"major cycle = {width} minor cycles",
            header,
        ]
        for label in stages:
            row = ["   ."] * width
            for op in ops:
                op_label = op.stage if op.slot < 0 else f"{op.stage}{op.slot}"
                if op_label == label:
                    row[op.minor_cycle] = "   X"
            lines.append(f"{label:<{label_width}}" + "".join(row))
        return "\n".join(lines)


class SimplePipeline(MinorPipeline):
    """Figure 2: strictly serial chain, major cycle = 2N+3.

    Within a major cycle: Writeback first (broadcast and wakeup), then
    Lsq_refresh, then N Issue slots each followed by its D-Cache access
    minor cycle (Issue is split in two steps regardless of instruction
    type to keep the major cycle a fixed length), plus a bookkeeping
    slot at the end.
    """

    name = "simple"
    figure = "Figure 2"

    @property
    def minor_cycles_per_major(self) -> int:
        return 2 * self._width + 3

    def schedule(self) -> list[ScheduledOp]:
        ops = [
            ScheduledOp(stage="writeback", slot=-1, minor_cycle=0),
            ScheduledOp(stage="lsq_refresh", slot=-1, minor_cycle=1),
        ]
        for slot in range(self._width):
            ops.append(ScheduledOp(
                stage="issue", slot=slot, minor_cycle=2 + 2 * slot
            ))
            ops.append(ScheduledOp(
                stage="cache", slot=slot, minor_cycle=3 + 2 * slot
            ))
        ops.append(ScheduledOp(
            stage="bookkeep", slot=-1, minor_cycle=2 * self._width + 2
        ))
        return ops


class ImprovedPipeline(MinorPipeline):
    """Figure 3: pipelined control, major cycle = N+4.

    Writeback is performed one minor cycle *before* the corresponding
    completion in the simulated pipeline (classic pipelined-control
    scheduling of the broadcast bus), so the N Issue slots no longer
    wait for it serially; a cache access precedes writeback to decide
    whether the writeback must be postponed on a miss, and the final
    minor cycle performs the bookkeeping whose effects Lsq_refresh
    observes at the start of the next major cycle.
    """

    name = "improved"
    figure = "Figure 3"

    @property
    def minor_cycles_per_major(self) -> int:
        return self._width + 4

    def schedule(self) -> list[ScheduledOp]:
        ops = [ScheduledOp(stage="lsq_refresh", slot=-1, minor_cycle=0)]
        for slot in range(self._width):
            ops.append(ScheduledOp(
                stage="issue", slot=slot, minor_cycle=1 + slot
            ))
        ops.append(ScheduledOp(
            stage="cache", slot=-1, minor_cycle=self._width + 1
        ))
        ops.append(ScheduledOp(
            stage="writeback", slot=-1, minor_cycle=self._width + 2
        ))
        ops.append(ScheduledOp(
            stage="bookkeep", slot=-1, minor_cycle=self._width + 3
        ))
        return ops


class OptimizedPipeline(MinorPipeline):
    """Figure 4: Lsq_refresh overlaps the first Issue slot; N+3.

    Because a typical N-wide processor provides fewer than N memory
    ports, disallowing load issue in slot 0 costs nothing — and then
    Lsq_refresh (whose result only load issue consumes) can run in
    parallel with that first slot.  Valid for configurations with at
    most N-1 memory ports
    (:attr:`repro.core.config.ProcessorConfig.supports_optimized_pipeline`).
    """

    name = "optimized"
    figure = "Figure 4"

    @property
    def minor_cycles_per_major(self) -> int:
        return self._width + 3

    def first_load_slot(self) -> int:
        return 1  # slot 0 may not carry a load

    def schedule(self) -> list[ScheduledOp]:
        ops = [ScheduledOp(stage="lsq_refresh", slot=-1, minor_cycle=0)]
        for slot in range(self._width):
            ops.append(ScheduledOp(
                stage="issue", slot=slot, minor_cycle=slot
            ))
        ops.append(ScheduledOp(
            stage="cache", slot=-1, minor_cycle=self._width
        ))
        ops.append(ScheduledOp(
            stage="writeback", slot=-1, minor_cycle=self._width + 1
        ))
        ops.append(ScheduledOp(
            stage="bookkeep", slot=-1, minor_cycle=self._width + 2
        ))
        return ops


def select_pipeline(width: int, memory_ports: int) -> MinorPipeline:
    """Pick the fastest valid organization for a configuration.

    The optimized (N+3) organization requires at most N-1 memory
    ports; otherwise the improved (N+4) one applies.  This matches the
    paper's evaluation: the 4-issue perfect-memory machine runs at
    N+3 = 7 minor cycles, the 2-issue cache configuration at N+4 = 6.
    """
    if memory_ports <= width - 1:
        return OptimizedPipeline(width)
    return ImprovedPipeline(width)
