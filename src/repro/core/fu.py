"""Functional-unit pool.

The paper's configuration: four ALUs (1 cycle), one multiplier
(3 cycles), one divider (10 cycles).  ALU and multiplier are modelled
as pipelined (a unit accepts a new operation every cycle); the divider
is unpipelined and stays busy for its full latency — the conventional
arrangement, which SimpleScalar's resource configuration also uses.

Branches and store address generation occupy ALU slots; loads occupy a
memory read port instead (tracked by the engine, not here).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ProcessorConfig
from repro.isa.opcodes import FuClass


@dataclass
class _UnitClass:
    count: int
    latency: int
    pipelined: bool
    issued_this_cycle: int = 0
    busy_until: list[int] | None = None  # per-unit, unpipelined only

    def reset_cycle(self) -> None:
        self.issued_this_cycle = 0


class FunctionalUnitPool:
    """Tracks per-cycle and multi-cycle functional-unit occupancy."""

    def __init__(self, config: ProcessorConfig) -> None:
        self._classes: dict[FuClass, _UnitClass] = {
            FuClass.ALU: _UnitClass(
                count=config.alu_count, latency=config.alu_latency,
                pipelined=True,
            ),
            FuClass.MUL: _UnitClass(
                count=config.mul_count, latency=config.mul_latency,
                pipelined=True,
            ),
            FuClass.DIV: _UnitClass(
                count=config.div_count, latency=config.div_latency,
                pipelined=False,
                busy_until=[0] * config.div_count,
            ),
        }

    @staticmethod
    def unit_for(fu: FuClass) -> FuClass:
        """Which unit class executes a given operation class.

        Branches, NOPs and store address generation use ALU slots;
        loads are handled by memory ports and take no unit here.
        """
        if fu in (FuClass.MUL, FuClass.DIV):
            return fu
        return FuClass.ALU

    def begin_cycle(self) -> None:
        """Reset per-cycle issue counters (call once per major cycle)."""
        for unit in self._classes.values():
            unit.reset_cycle()

    def can_issue(self, fu: FuClass, cycle: int) -> bool:
        """Is a unit of the right class available this cycle?"""
        unit = self._classes[self.unit_for(fu)]
        if unit.pipelined:
            return unit.issued_this_cycle < unit.count
        if unit.issued_this_cycle >= unit.count:
            return False
        assert unit.busy_until is not None
        return any(until <= cycle for until in unit.busy_until)

    def issue(self, fu: FuClass, cycle: int) -> int:
        """Claim a unit; returns the operation latency.

        Raises
        ------
        RuntimeError
            If no unit is available (callers must check
            :meth:`can_issue` first — the Issue stage does).
        """
        unit = self._classes[self.unit_for(fu)]
        if not self.can_issue(fu, cycle):
            raise RuntimeError(f"no {fu.value} unit available in cycle {cycle}")
        unit.issued_this_cycle += 1
        if not unit.pipelined:
            assert unit.busy_until is not None
            for index, until in enumerate(unit.busy_until):
                if until <= cycle:
                    unit.busy_until[index] = cycle + unit.latency
                    break
        return unit.latency

    def latency(self, fu: FuClass) -> int:
        """Latency of the class that would execute ``fu``."""
        return self._classes[self.unit_for(fu)].latency
