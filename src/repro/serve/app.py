"""The campaign service: requests → jobs → backends → cached results.

:class:`CampaignService` is the composition root the HTTP layer and
the CLI both drive.  It owns one :class:`~repro.serve.cache.CacheStore`
and one :class:`~repro.serve.jobs.JobManager` rooted under a single
service directory::

    <root>/cache/     content-addressed result store
    <root>/jobs/      crash-safe job journal
    <root>/results/   per-job result payloads
    <root>/work/      per-job working directories (traces, checkpoints)

Three request kinds are accepted, all as plain JSON documents:

* ``{"kind": "simulate", "spec": {...}}`` — one
  :meth:`Simulation.from_spec` run; the spec is canonicalized on
  submission, so equivalent spellings coalesce to one job;
* ``{"kind": "sweep", "workload": ..., "axes": {...}, ...}`` — a
  :class:`~repro.sweep.SweepRunner` grid over a shared trace;
* ``{"kind": "search", "strategy": ..., ...}`` — an adaptive
  :class:`~repro.sweep.SearchRunner` over the same machinery.

Every simulation a job performs flows through a
:class:`~repro.serve.cache.CachingBackend` wrapped around the
service's execution backend, so overlapping submissions — the same
sweep twice, two searches exploring intersecting regions, a sweep
whose grid contains points a simulate request already ran — execute
each distinct computation exactly once.

Two server shells wrap the service: :class:`CampaignServer` (the
foreground ``resim serve`` process) and :class:`BackgroundServer`
(a daemon-thread server for tests and benchmarks).
"""

from __future__ import annotations

import asyncio
import json
import threading
from pathlib import Path
from collections.abc import Mapping

from repro.core.specialize import ENGINES
from repro.exec import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    WorkUnit,
)
from repro.serialize import config_from_dict, config_to_dict
from repro.serve.cache import CacheStore, CachingBackend
from repro.serve.canon import ENGINE_VERSION, canonical_spec
from repro.serve.http import HttpApi
from repro.serve.jobs import Job, JobContext, JobManager
from repro.session import CONFIGS, RegistryError
from repro.sweep import SEARCHES, SweepRunner, SweepSpec
from repro.sweep.progress import SweepProgress
from repro.sweep.result import SORT_KEYS
from repro.sweep.search import (
    GridSearch,
    HillClimb,
    RandomSearch,
    SearchRunner,
)
from repro.workloads.tracegen import is_known_workload

#: Default bind address of ``resim serve``.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8437

#: Request kinds the service accepts.
REQUEST_KINDS = ("simulate", "sweep", "search")


class ServiceError(ValueError):
    """Raised for malformed submissions (the HTTP 4xx family)."""


def _validate_engine(value: object) -> str:
    """Check an engine-tier name against the ENGINES registry.

    Tiers are bit-identical by contract, so the tier never reaches a
    cache key — it is carried beside the canonical spec and re-applied
    at execution time."""
    if not isinstance(value, str):
        raise ServiceError(
            f"request field 'engine' must be an engine tier name, "
            f"got {value!r}")
    try:
        ENGINES.get(value)
    except RegistryError as error:
        raise ServiceError(str(error)) from error
    return value


class _JobProgress(SweepProgress):
    """Bridge sweep/search progress into a job's event stream — and
    the cooperative cancellation point: every completed design point
    polls the job's cancel flag."""

    def __init__(self, context: JobContext) -> None:
        self._context = context
        self._total: int | None = None
        self._done = 0

    def start(self, total: int | None, *, label: str = "sweep") -> None:
        self._total = total
        self._done = 0
        self._context.set_progress(0, total)
        self._context.emit(event="start", label=label, total=total)

    def round(self, index: int, count: int) -> None:
        self._context.emit(event="round", round=index, count=count)

    def point(self, outcome) -> None:
        self._context.check_cancelled()
        self._done += 1
        self._context.set_progress(self._done, self._total)
        self._context.emit(
            event="point", key=outcome.key, label=outcome.label,
            ipc=outcome.ipc, from_checkpoint=outcome.from_checkpoint)

    def unit_failed(self, unit_id: str, message: str) -> None:
        self._context.emit(event="point_failed", unit=unit_id,
                           message=message)

    def finish(self) -> None:
        self._context.emit(event="evaluated", done=self._done)


def _require_int(request: Mapping, key: str, default: int) -> int:
    value = request.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ServiceError(
            f"request field {key!r} must be an integer, "
            f"got {value!r}")
    return value


class CampaignService:
    """One campaign service instance (see module docstring).

    ``concurrency`` bounds how many jobs execute at once;
    ``workers`` sizes each job's execution backend (1 = serial,
    N > 1 = a per-job process pool).  ``autostart=False`` journals
    submissions without executing them until :meth:`start` — the
    restart-recovery and test hook.
    """

    def __init__(self, root: str | Path, *,
                 engine_version: str = ENGINE_VERSION,
                 concurrency: int = 2, workers: int = 1,
                 autostart: bool = True) -> None:
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        self.root = Path(root)
        self.workers = workers
        self.store = CacheStore(self.root / "cache",
                                engine_version=engine_version)
        self.manager = JobManager(self.root, self._execute_job,
                                  concurrency=concurrency,
                                  autostart=autostart)

    def start(self) -> None:
        self.manager.start()

    def close(self) -> None:
        self.manager.close()

    # -- submission ----------------------------------------------------

    def submit(self, request: Mapping) -> tuple[Job, bool]:
        """Validate, normalize, and enqueue one request document."""
        return self.manager.submit(self.validate_request(request))

    def validate_request(self, request: Mapping) -> dict:
        """The normalized form of a request (raises
        :class:`ServiceError` — or a canon/sweep error, all
        ``ValueError`` — on malformed documents).  Normalization is
        what makes coalescing and caching language-independent:
        equivalent spellings produce one normalized document."""
        if not isinstance(request, Mapping):
            raise ServiceError(
                f"request must be a JSON object, got "
                f"{type(request).__name__}")
        kind = request.get("kind")
        if kind == "simulate":
            return self._validate_simulate(request)
        if kind in ("sweep", "search"):
            return self._validate_bulk(request, kind)
        raise ServiceError(
            f"unknown request kind {kind!r}; expected one of "
            f"{', '.join(REQUEST_KINDS)}")

    def _validate_simulate(self, request: Mapping) -> dict:
        spec = request.get("spec")
        if not isinstance(spec, Mapping):
            raise ServiceError(
                "a simulate request needs a 'spec' object "
                "(a Simulation.from_spec document)")
        normalized = {"kind": "simulate", "spec": canonical_spec(spec)}
        # canonical_spec() drops the engine tier (tiers are
        # bit-identical, so cache keys must not depend on it); carry
        # it beside the spec so execution still honors the choice.
        engine = _validate_engine(spec.get("engine", "reference"))
        if engine != "reference":
            normalized["engine"] = engine
        return normalized

    def _base_config(self, value: object):
        if isinstance(value, str):
            try:
                return CONFIGS.get(value)
            except RegistryError as error:
                raise ServiceError(str(error)) from error
        if isinstance(value, Mapping):
            try:
                return config_from_dict(dict(value))
            except (KeyError, TypeError, ValueError) as error:
                raise ServiceError(
                    f"bad config in request: {error!r}") from error
        raise ServiceError(
            f"request field 'config' must be a registered config "
            f"name or a config dict, got {value!r}")

    def _validate_bulk(self, request: Mapping, kind: str) -> dict:
        axes = request.get("axes")
        if not isinstance(axes, Mapping) or not axes:
            raise ServiceError(
                f"a {kind} request needs a non-empty 'axes' object "
                f"(config field name -> list of values)")
        axes_lists: dict[str, list] = {}
        for name in sorted(axes):
            values = axes[name]
            if isinstance(values, (str, bytes)) \
                    or not isinstance(values, (list, tuple)):
                raise ServiceError(
                    f"axis {name!r} must map to a list of values, "
                    f"got {values!r}")
            axes_lists[str(name)] = list(values)
        base = self._base_config(request.get("config", "4wide-perfect"))
        spec = SweepSpec(axes=axes_lists, base=base)
        if not spec.expand().points:
            raise ServiceError(
                f"the {kind} grid expands to no valid design points")
        workload = request.get("workload", "gzip")
        if not isinstance(workload, str) \
                or not is_known_workload(workload):
            raise ServiceError(f"unknown workload {workload!r}")
        normalized = {
            "kind": kind,
            "workload": workload,
            "config": config_to_dict(base),
            "axes": axes_lists,
            "budget": _require_int(request, "budget", 30_000),
            "seed": _require_int(request, "seed", 7),
            "shards": _require_int(request, "shards", 1),
        }
        engine = _validate_engine(request.get("engine", "reference"))
        if engine != "reference":
            normalized["engine"] = engine
        # Region sampling changes what the job *computes* (estimates,
        # not exact statistics), so every sampling parameter is part
        # of the normalized document — a sampled and an exact
        # submission of the same grid must never coalesce into one
        # job.  Full replay (the default) is normalized by omission,
        # keeping pre-sampling submissions byte-identical.
        sampling = request.get("sampling", "full")
        if sampling not in ("full", "regions"):
            raise ServiceError(
                f"request field 'sampling' must be 'full' or "
                f"'regions', got {sampling!r}")
        if sampling == "regions":
            if normalized["shards"] > 1:
                raise ServiceError(
                    "'shards' and sampling='regions' are mutually "
                    "exclusive: sharding is exact, sampling estimates")
            normalized["sampling"] = {
                "mode": "regions",
                "regions": _require_int(request, "regions", 8),
                "seed": _require_int(request, "region_seed", 0),
                "warmup_segments":
                    _require_int(request, "region_warmup", 1),
            }
        if kind == "search":
            strategy = request.get("strategy", "hillclimb")
            try:
                SEARCHES.get(strategy)
            except RegistryError as error:
                raise ServiceError(str(error)) from error
            metric = request.get("metric", "ipc")
            if metric not in SORT_KEYS:
                raise ServiceError(
                    f"unknown metric {metric!r}; choose from "
                    f"{', '.join(SORT_KEYS)}")
            normalized.update({
                "strategy": strategy,
                "metric": metric,
                "samples": _require_int(request, "samples", 16),
                "search_seed": _require_int(request, "search_seed", 1),
                "max_steps": _require_int(request, "max_steps", 64),
            })
        return normalized

    # -- execution -----------------------------------------------------

    def _inner_backend(self) -> ExecutionBackend:
        if self.workers > 1:
            return ProcessPoolBackend(self.workers)
        return SerialBackend()

    def _caching_backend(self, context: JobContext) -> CachingBackend:
        return CachingBackend(
            self.store, self._inner_backend(),
            on_verdict=lambda unit, key, hit: context.emit(
                event="cache", unit=unit.unit_id, key=key, hit=hit))

    def _workdir(self, job: Job) -> Path:
        workdir = self.root / "work" / job.job_id
        workdir.mkdir(parents=True, exist_ok=True)
        return workdir

    def _execute_job(self, job: Job, context: JobContext) -> dict:
        kind = job.request.get("kind")
        context.check_cancelled()
        if kind == "simulate":
            return self._run_simulate(job, context)
        if kind == "sweep":
            return self._run_sweep(job, context)
        if kind == "search":
            return self._run_search(job, context)
        raise ServiceError(f"unknown request kind {kind!r}")

    def _run_simulate(self, job: Job, context: JobContext) -> dict:
        backend = self._caching_backend(context)
        spec = dict(job.request["spec"])
        engine = job.request.get("engine", "reference")
        if engine != "reference":
            spec["engine"] = engine
        unit = WorkUnit(
            unit_id=job.job_id, spec=spec,
            result_path=str(self._workdir(job) / "result.json"))
        context.emit(event="start", label="simulate", total=1)
        outcome = backend.run_units([unit])[unit.unit_id]
        context.set_cache_tally(backend.hits, backend.misses)
        context.set_progress(1, 1)
        return {
            "kind": "simulate",
            "cache_key": backend.key_for(unit),
            "config": outcome["config"],
            "stats": outcome["stats"],
        }

    def _sweep_spec(self, request: Mapping) -> SweepSpec:
        return SweepSpec(axes=dict(request["axes"]),
                         base=config_from_dict(request["config"]))

    @staticmethod
    def _sampling_kwargs(request: Mapping) -> dict:
        """Runner kwargs for a normalized request's sampling entry."""
        sampling = request.get("sampling")
        if not sampling:
            return {}
        return {
            "sampling": sampling["mode"],
            "regions": sampling["regions"],
            "region_seed": sampling["seed"],
            "region_warmup": sampling["warmup_segments"],
        }

    def _run_sweep(self, job: Job, context: JobContext) -> dict:
        request = job.request
        backend = self._caching_backend(context)
        runner = SweepRunner(
            self._sweep_spec(request), request["workload"],
            results_dir=self._workdir(job), budget=request["budget"],
            seed=request["seed"], backend=backend,
            progress=_JobProgress(context), shards=request["shards"],
            engine=request.get("engine", "reference"),
            **self._sampling_kwargs(request))
        outcome = runner.run()
        context.set_cache_tally(backend.hits, backend.misses)
        return {"kind": "sweep", "sweep": json.loads(outcome.to_json())}

    def _run_search(self, job: Job, context: JobContext) -> dict:
        request = job.request
        spec = self._sweep_spec(request)
        strategy_cls = SEARCHES.get(request["strategy"])
        if strategy_cls is RandomSearch:
            strategy = RandomSearch(spec, samples=request["samples"],
                                    seed=request["search_seed"],
                                    metric=request["metric"])
        elif strategy_cls is HillClimb:
            strategy = HillClimb(spec, metric=request["metric"],
                                 max_steps=request["max_steps"])
        elif strategy_cls is GridSearch:
            strategy = GridSearch(spec, metric=request["metric"])
        else:  # extension-registered strategy
            strategy = strategy_cls(spec, metric=request["metric"])
        backend = self._caching_backend(context)
        runner = SearchRunner(
            strategy, request["workload"],
            results_dir=self._workdir(job), budget=request["budget"],
            seed=request["seed"], backend=backend,
            progress=_JobProgress(context), shards=request["shards"],
            engine=request.get("engine", "reference"),
            **self._sampling_kwargs(request))
        outcome = runner.run()
        context.set_cache_tally(backend.hits, backend.misses)
        best = outcome.best
        return {
            "kind": "search",
            "strategy": outcome.strategy,
            "metric": outcome.metric,
            "rounds": outcome.rounds,
            "best": None if best is None else {
                "key": best.key,
                "label": best.label,
                "ipc": best.ipc,
                "config": config_to_dict(best.config),
            },
            "sweep": json.loads(outcome.result.to_json()),
        }

    # -- documents -----------------------------------------------------

    def status_document(self, job: Job) -> dict:
        """The JSON status form of one job (``GET /v1/jobs/<id>``)."""
        return {
            "job_id": job.job_id,
            "kind": job.request.get("kind"),
            "request_key": job.request_key,
            "state": job.state,
            "error": job.error,
            "cache": {"hits": job.cache_hits,
                      "misses": job.cache_misses},
            "points": {"done": job.points_done,
                       "total": job.points_total},
        }

    def health_document(self) -> dict:
        return {
            "ok": True,
            "engine_version": self.store.engine_version,
            "jobs": self.manager.counts(),
        }


class CampaignServer:
    """The foreground asyncio server shell (``resim serve``)."""

    def __init__(self, service: CampaignService, *,
                 host: str = DEFAULT_HOST,
                 port: int = DEFAULT_PORT) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._api = HttpApi(service)

    async def _serve(self, ready=None) -> None:
        server = await asyncio.start_server(
            self._api.handle, self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        if ready is not None:
            ready(self.host, self.port)
        async with server:
            await server.serve_forever()

    def run(self, *, ready=None) -> None:
        """Serve until interrupted; ``ready(host, port)`` fires once
        the socket is bound (port 0 resolves to the real port)."""
        try:
            asyncio.run(self._serve(ready))
        except KeyboardInterrupt:
            pass
        finally:
            self.service.close()


class BackgroundServer:
    """A campaign server on a daemon thread — the harness tests and
    benchmarks drive::

        with BackgroundServer(CampaignService(root)) as server:
            client = ServiceClient(*server.address)
            ...

    Exiting the context stops the listener and closes the service
    (running jobs are awaited; queued ones stay journaled).
    """

    def __init__(self, service: CampaignService, *,
                 host: str = DEFAULT_HOST, port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._api = HttpApi(service)
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._error: BaseException | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self.host, self.port

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = await asyncio.start_server(
            self._api.handle, self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        async with server:
            await self._stop.wait()

    def _main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as error:  # noqa: BLE001 — surfaced to
            # the entering thread below, not swallowed.
            self._error = error
            self._ready.set()

    def __enter__(self) -> BackgroundServer:
        self._thread = threading.Thread(
            target=self._main, name="resim-serve", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise ServiceError("campaign server did not start")
        if self._error is not None:
            raise ServiceError(
                f"campaign server failed to start: {self._error}")
        return self

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30)
        self.service.close()
