"""Canonical cache keys: (canonical spec, trace digest, engine version).

The campaign service memoizes completed simulations, which is only
sound if two submissions that describe *the same computation* agree on
one key — and two submissions that could differ in a single produced
bit never share one.  A ReSim result is a deterministic function of
exactly three things:

* **the canonical spec** — :meth:`Simulation.canonical_spec`:
  defaults materialized, config fully expanded, keys sorted, so spec
  key reordering, omitted defaults, and registered-name-vs-full-dict
  configs all collapse to one form;
* **the trace content** — hashed by :func:`trace_digest`, never
  identified by path: the same trace regenerated into two different
  job directories (or copied across hosts) must hit the same cache
  entry, so :func:`cache_key` *replaces* the spec's ``trace_file``
  path with the file's content digest.  Workload-sourced specs carry
  no digest — generation is deterministic in the spec itself;
* **the engine version** — :data:`ENGINE_VERSION`: a simulator change
  may legitimately change results, so a version bump changes every
  key (and :class:`~repro.serve.cache.CacheStore` additionally purges
  entries written by other versions).

Everything is hashed through :func:`repro.serialize.canonical_digest`
(sorted-key JSON → SHA-256), the same canonicalization every other
identifier in the repo uses.
"""

from __future__ import annotations

from pathlib import Path
from collections.abc import Mapping

from repro import __version__ as ENGINE_VERSION
from repro.serialize import canonical_digest
from repro.session import SessionError, Simulation
from repro.trace.analyze import ProfileError, trace_content_digest

#: Hex digits of a cache key (160 bits of SHA-256): long enough that
#: collisions are not a practical concern, short enough for filenames.
CACHE_KEY_LENGTH = 40

#: Cache-key schema; bump when the key derivation itself changes (a
#: derivation change silently re-keys every entry, which must read as
#: a miss, never as a false hit).
KEY_SCHEMA = 1


class CanonError(ValueError):
    """Raised for specs that cannot be canonically keyed."""


def trace_digest(path: str | Path, *, chunk_bytes: int = 1 << 20) -> str:
    """Content digest of a stored trace file: streamed SHA-256 over
    the raw bytes, constant memory regardless of trace length.

    This is the digest ``resim trace info`` surfaces and the one the
    campaign-service cache key folds in — byte-identical trace files
    digest identically wherever they live.  The derivation is shared
    with the trace profiler
    (:func:`repro.trace.analyze.trace_content_digest`), so a
    ``.rprof`` sidecar and a cached result that agree on a digest
    agree on the trace bytes.
    """
    try:
        return trace_content_digest(path, chunk_bytes=chunk_bytes)
    except ProfileError as error:
        raise CanonError(str(error)) from error


def canonical_spec(spec: Mapping) -> dict:
    """Canonicalize a raw spec mapping (see
    :meth:`Simulation.canonical_spec`); raises :class:`CanonError`
    for specs :meth:`Simulation.from_spec` rejects."""
    try:
        return Simulation.from_spec(spec).canonical_spec()
    except SessionError as error:
        raise CanonError(str(error)) from error


def cache_key(
    spec: Mapping,
    *,
    trace_digest: str | None = None,
    engine_version: str = ENGINE_VERSION,
    length: int = CACHE_KEY_LENGTH,
) -> str:
    """The content-addressed cache key of one simulation spec.

    ``trace_digest`` is required for (and only for) trace-file specs:
    the spec's machine-specific ``trace_file`` *path* is replaced by
    the digest so relocated-but-identical traces share an entry.
    Workload specs pass ``None`` — the canonical spec alone pins the
    deterministic generation.
    """
    canonical = canonical_spec(spec)
    if canonical["trace_file"] is not None:
        if trace_digest is None:
            raise CanonError(
                "a trace-file spec needs its trace content digest to "
                "be cache-keyed (paths are machine-specific); pass "
                "trace_digest=trace_digest(path)"
            )
        canonical["trace_file"] = None
    elif trace_digest is not None:
        raise CanonError(
            "a workload spec has no trace file to digest; its "
            "generation is pinned by the canonical spec alone"
        )
    identity = {
        "key_schema": KEY_SCHEMA,
        "engine_version": engine_version,
        "spec": canonical,
        "trace_digest": trace_digest,
    }
    return canonical_digest(identity, length=length)
