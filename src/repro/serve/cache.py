"""Content-addressed result cache: simulate each computation once.

The production-scale move of the campaign service: every completed
work unit's (config, stats) is stored under its
:func:`~repro.serve.canon.cache_key`, so any later submission that
describes the same computation — same canonical spec, same trace
bytes, same engine version — is served from disk instead of burning a
single simulated cycle.  Because the engine is deterministic and the
key covers everything the result depends on, a hit is *byte-identical*
to a re-execution, and overlapping design-space queries from many
users collapse to one simulation each.

Two pieces:

* :class:`CacheStore` — the on-disk store.  Entries live at
  ``objects/<key[:2]>/<key>.json``, written with the repo's atomic
  write-then-rename idiom (this module is registered with resim-lint
  as a queue-protocol module, rule S201), so a crash mid-write never
  leaves a truncated entry.  A ``version.json`` marker pins the
  engine version; opening a store written by a different version
  purges every entry — a simulator change may legitimately change
  results, and stale bits must never be served as fresh ones.
* :class:`CachingBackend` — an :class:`~repro.exec.ExecutionBackend`
  wrapper that memoizes any inner backend at the work-unit level:
  hits synthesize the unit's result document from the cached entry
  (and still write ``result_path``, so sweep checkpoints/reducers
  work unchanged); misses run on the inner backend and are stored as
  they land.  Sweeps, searches, and single simulations all flow
  through units, so one wrapper memoizes every job kind.
"""

from __future__ import annotations

import json
import shutil
import threading
from pathlib import Path
from collections.abc import Callable, Mapping, Sequence

from repro.exec import ExecutionBackend, WorkUnit
from repro.exec.backends import OnResult
from repro.exec.unit import atomic_write_json
from repro.serve.canon import (
    CACHE_KEY_LENGTH,
    ENGINE_VERSION,
    cache_key,
    trace_digest,
)

#: Cache entry document schema; bump on incompatible layout changes.
CACHE_SCHEMA = 1

#: RESULT_SCHEMA-compatible keys a cached entry contributes to a
#: synthesized result document.
_ENTRY_RESULT_KEYS = ("config", "stats")


class CacheError(ValueError):
    """Raised for malformed cache stores or entries."""


class CacheStore:
    """Content-addressed store of completed simulation results.

    Thread-safe (the job manager's worker threads share one store);
    all writes are atomic write-then-rename, so concurrent readers on
    a shared filesystem never observe a torn entry, and two writers
    racing on one key both write the same bytes (the key is content-
    addressed — last rename wins, harmlessly).
    """

    def __init__(self, root: str | Path, *,
                 engine_version: str = ENGINE_VERSION) -> None:
        self.root = Path(root)
        self.objects = self.root / "objects"
        self.engine_version = engine_version
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.invalidated = 0
        self._adopt_version()

    # -- versioning ----------------------------------------------------

    def _marker_path(self) -> Path:
        return self.root / "version.json"

    def _adopt_version(self) -> None:
        """Pin the store to this engine version, purging entries a
        different version wrote (stale results must read as misses,
        never as hits)."""
        marker = self._marker_path()
        try:
            existing = json.loads(marker.read_text())
        except (OSError, json.JSONDecodeError):
            existing = None
        if isinstance(existing, dict) \
                and existing.get("engine_version") == self.engine_version \
                and existing.get("schema") == CACHE_SCHEMA:
            self.objects.mkdir(parents=True, exist_ok=True)
            return
        if existing is not None or self.objects.exists():
            self.invalidated += self.invalidate_all()
        self.objects.mkdir(parents=True, exist_ok=True)
        atomic_write_json(marker, {"schema": CACHE_SCHEMA,
                                   "engine_version": self.engine_version})

    def invalidate_all(self) -> int:
        """Drop every entry (returns how many were dropped)."""
        count = len(self)
        if self.objects.exists():
            shutil.rmtree(self.objects)
        self.objects.mkdir(parents=True, exist_ok=True)
        return count

    # -- entries -------------------------------------------------------

    def _entry_path(self, key: str) -> Path:
        if not key or any(ch not in "0123456789abcdef" for ch in key):
            raise CacheError(f"malformed cache key {key!r}")
        return self.objects / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The entry stored under ``key``, or None (counted as a
        miss).  Unreadable, foreign-schema, foreign-version, and
        mis-keyed documents all read as misses — never trust bytes
        the validator cannot vouch for."""
        path = self._entry_path(key)
        try:
            entry = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            entry = None
        if (not isinstance(entry, dict)
                or entry.get("schema") != CACHE_SCHEMA
                or entry.get("key") != key
                or entry.get("engine_version") != self.engine_version
                or not isinstance(entry.get("stats"), dict)
                or not isinstance(entry.get("config"), dict)):
            with self._lock:
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
        return entry

    def put(self, key: str, *, config: Mapping, stats: Mapping,
            canonical_spec: Mapping | None = None,
            trace_digest: str | None = None) -> dict:
        """Store one completed computation under its key."""
        entry = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "engine_version": self.engine_version,
            "config": dict(config),
            "stats": dict(stats),
            "canonical_spec": (None if canonical_spec is None
                               else dict(canonical_spec)),
            "trace_digest": trace_digest,
        }
        atomic_write_json(self._entry_path(key), entry)
        with self._lock:
            self.stores += 1
        return entry

    def keys(self) -> list[str]:
        """Every stored key, sorted."""
        if not self.objects.exists():
            return []
        return sorted(path.name[:-len(".json")]
                      for path in self.objects.glob("*/*.json"))

    def __len__(self) -> int:
        if not self.objects.exists():
            return 0
        return sum(1 for _ in self.objects.glob("*/*.json"))

    def stats_document(self) -> dict:
        """Counters + occupancy, for ``GET /v1/cache``."""
        with self._lock:
            return {
                "engine_version": self.engine_version,
                "entries": len(self),
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "invalidated": self.invalidated,
            }

    def describe(self) -> str:
        return (f"CacheStore({str(self.root)!r}, "
                f"engine_version={self.engine_version!r})")

    __repr__ = describe


#: Callback invoked per unit with its cache verdict:
#: ``(unit, key, hit)`` — the job manager streams these as events.
OnCacheVerdict = Callable[[WorkUnit, str, bool], None]


class CachingBackend(ExecutionBackend):
    """Memoize any inner backend through a :class:`CacheStore`.

    For every drained unit: derive its content-addressed key (trace
    digests are memoized per path — trace files are write-once in
    this codebase), serve hits by synthesizing the unit's result
    document from the cached (config, stats) — the document passes
    :func:`~repro.exec.unit.result_matches_unit` because identity
    (unit id, spec, tags) comes from the unit itself — and fan the
    misses out to the inner backend, storing each success as it
    lands.  Error documents are never cached: failures must re-run.

    ``hits``/``misses`` count this instance's verdicts (a job's
    per-run tally); the shared store accumulates the global ones.
    """

    name = "caching"

    def __init__(self, store: CacheStore,
                 inner: ExecutionBackend, *,
                 on_verdict: OnCacheVerdict | None = None) -> None:
        super().__init__()
        self.store = store
        self.inner = inner
        self.on_verdict = on_verdict
        self.hits = 0
        self.misses = 0
        self._digests: dict[str, str] = {}

    def _digest_for(self, spec: Mapping) -> str | None:
        path = spec.get("trace_file")
        if path is None:
            return None
        resolved = str(Path(str(path)).resolve())
        if resolved not in self._digests:
            self._digests[resolved] = trace_digest(resolved)
        return self._digests[resolved]

    def key_for(self, unit: WorkUnit) -> str:
        """The content-addressed key of one unit's computation."""
        return cache_key(unit.spec,
                         trace_digest=self._digest_for(unit.spec),
                         engine_version=self.store.engine_version,
                         length=CACHE_KEY_LENGTH)

    def _execute(self, batch: Sequence[WorkUnit],
                 on_result: OnResult | None) -> dict[str, dict]:
        from repro.exec.unit import RESULT_SCHEMA

        results: dict[str, dict] = {}
        keys: dict[str, str] = {}
        misses: list[WorkUnit] = []

        for unit in batch:
            key = self.key_for(unit)
            keys[unit.unit_id] = key
            entry = self.store.get(key)
            if entry is None:
                self.misses += 1
                if self.on_verdict is not None:
                    self.on_verdict(unit, key, False)
                misses.append(unit)
                continue
            self.hits += 1
            if self.on_verdict is not None:
                self.on_verdict(unit, key, True)
            payload = {
                "schema": RESULT_SCHEMA,
                "unit_id": unit.unit_id,
                "spec": dict(unit.spec),
                **{field: entry[field]
                   for field in _ENTRY_RESULT_KEYS},
                **unit.tags,
            }
            # Still written to result_path: a cache-served unit's
            # document remains a valid sweep checkpoint / shard input.
            atomic_write_json(unit.result_path, payload)
            results[unit.unit_id] = payload
            if on_result is not None:
                on_result(unit, payload)

        if misses:
            def collect(unit: WorkUnit, payload: dict) -> None:
                if "error" not in payload:
                    self.store.put(
                        keys[unit.unit_id],
                        config=payload["config"],
                        stats=payload["stats"],
                        trace_digest=self._digest_for(unit.spec),
                    )
                results[unit.unit_id] = payload
                if on_result is not None:
                    on_result(unit, payload)

            self.inner.run_units(misses, on_result=collect)
        return results

    def describe(self) -> str:
        return (f"CachingBackend({self.store.describe()} over "
                f"{self.inner.describe()})")
