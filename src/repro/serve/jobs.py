"""The campaign service's job manager: submit, schedule, journal.

A *job* is one accepted submission — a simulate/sweep/search request
document — moving through ``queued → running → done`` (or ``failed``
/ ``cancelled``).  The manager's obligations:

* **crash safety** — every state transition is journaled to
  ``jobs/<job_id>.json`` with the repo's atomic write-then-rename
  idiom (this module is registered with resim-lint as a
  queue-protocol module, rule S201).  A server killed mid-run
  restarts, re-reads the journal, and re-queues every job that had
  not reached a terminal state; because execution is deterministic
  and results are content-address-cached, the re-run re-simulates
  only what the first attempt never finished.
* **coalescing** — submissions are keyed by the canonical digest of
  their (normalized) request document; a request identical to one
  already queued or running returns *that* job instead of spawning a
  duplicate, so N users racing to submit the same sweep trigger one
  execution.  (Terminal jobs never coalesce: a resubmission is a new
  job — which then serves from the result cache.)
* **bounded concurrency** — jobs execute on a fixed-size thread pool
  (each job's own work fans out through its execution backend), so a
  burst of submissions queues instead of forking without limit.
* **cooperative cancellation** — ``cancel`` flips a per-job flag that
  the executor polls between design points
  (:exc:`JobCancelled`); a queued job that was never started
  cancels immediately.

Job documents deliberately carry **no wall-clock values** (rule
D102): a journal is part of the deterministic record of what was
computed, not when.  Timing belongs to clients.
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Callable, Mapping

from repro.exec.unit import atomic_write_json
from repro.serialize import canonical_digest

#: Job journal document schema; bump on incompatible layout changes.
JOB_SCHEMA = 1

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: Every legal job state, in lifecycle order.
JOB_STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)

#: States a job never leaves.
TERMINAL_STATES = frozenset((DONE, FAILED, CANCELLED))

#: Hex digits of a request key (the coalescing identity).
REQUEST_KEY_LENGTH = 40


class JobError(ValueError):
    """Raised for unknown jobs, bad states, or malformed journals."""


class JobCancelled(Exception):
    """Raised inside an executor to stop a cancelled job.

    Not an error: the run loop converts it into the ``cancelled``
    terminal state.  Executors surface it by calling
    :meth:`JobContext.check_cancelled` between units of work.
    """


def request_key(request: Mapping) -> str:
    """The coalescing identity of one request document: canonical
    digest of its (normalized) JSON form.  Two submissions with equal
    normalized requests are the same campaign."""
    return canonical_digest(dict(request), length=REQUEST_KEY_LENGTH)


@dataclass
class Job:
    """One accepted submission and its journaled progress."""

    job_id: str
    request: dict
    request_key: str
    state: str = QUEUED
    error: str | None = None
    cache_hits: int = 0
    cache_misses: int = 0
    points_done: int = 0
    points_total: int | None = None

    @property
    def finished(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> dict:
        """JSON-safe journal form (inverse of :meth:`from_dict`)."""
        return {
            "schema": JOB_SCHEMA,
            "job_id": self.job_id,
            "request": dict(self.request),
            "request_key": self.request_key,
            "state": self.state,
            "error": self.error,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "points_done": self.points_done,
            "points_total": self.points_total,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> Job:
        if not isinstance(data, Mapping):
            raise JobError(
                f"job document must be a mapping, got "
                f"{type(data).__name__}")
        if data.get("schema") != JOB_SCHEMA:
            raise JobError(
                f"unsupported job schema {data.get('schema')!r} "
                f"(this version reads schema {JOB_SCHEMA})")
        state = data.get("state")
        if state not in JOB_STATES:
            raise JobError(f"unknown job state {state!r}")
        try:
            return cls(
                job_id=data["job_id"],
                request=dict(data["request"]),
                request_key=data["request_key"],
                state=state,
                error=data.get("error"),
                cache_hits=int(data.get("cache_hits", 0)),
                cache_misses=int(data.get("cache_misses", 0)),
                points_done=int(data.get("points_done", 0)),
                points_total=data.get("points_total"),
            )
        except KeyError as error:
            raise JobError(
                f"job document missing key {error.args[0]!r}"
            ) from None


@dataclass
class _Runtime:
    """Per-job in-memory state the journal does not carry: the event
    log (progress streaming), the cancel flag, and the finished
    latch."""

    events: list[dict] = field(default_factory=list)
    cancel: threading.Event = field(default_factory=threading.Event)
    finished: threading.Event = field(default_factory=threading.Event)


class JobContext:
    """The executor's handle back into the manager: emit progress
    events, report cache/point tallies, and poll cancellation."""

    def __init__(self, manager: JobManager, job: Job) -> None:
        self._manager = manager
        self.job = job

    def emit(self, **event: object) -> None:
        """Append one progress event to the job's stream."""
        self._manager.emit(self.job.job_id, dict(event))

    def cancelled(self) -> bool:
        return self._manager.cancel_requested(self.job.job_id)

    def check_cancelled(self) -> None:
        """Raise :exc:`JobCancelled` if a cancel was requested —
        executors call this between units of work."""
        if self.cancelled():
            raise JobCancelled(self.job.job_id)

    def set_progress(self, done: int, total: int | None) -> None:
        self._manager.update_job(self.job.job_id, points_done=done,
                                 points_total=total)

    def set_cache_tally(self, hits: int, misses: int) -> None:
        self._manager.update_job(self.job.job_id, cache_hits=hits,
                                 cache_misses=misses)


#: The pluggable executor: runs one job to completion and returns its
#: result payload (a JSON-safe dict the manager persists).  Raises to
#: fail the job; raises :exc:`JobCancelled` to cancel it.
JobExecutor = Callable[[Job, JobContext], dict]


class JobManager:
    """Schedule jobs onto a bounded thread pool with a crash-safe
    journal (see module docstring).

    ``autostart=False`` journals submissions without executing them —
    the restart path (a server that died before running its queue)
    and the test hook for observing pre-execution states; call
    :meth:`start` to begin draining.
    """

    def __init__(self, root: str | Path, execute: JobExecutor, *,
                 concurrency: int = 2, autostart: bool = True) -> None:
        if concurrency < 1:
            raise JobError(
                f"concurrency must be >= 1, got {concurrency}")
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.results_dir = self.root / "results"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.results_dir.mkdir(parents=True, exist_ok=True)
        self._execute = execute
        self.concurrency = concurrency
        self._lock = threading.RLock()
        self._jobs: dict[str, Job] = {}
        self._runtime: dict[str, _Runtime] = {}
        self._seq = 0
        self._pool: ThreadPoolExecutor | None = None
        self._recover()
        if autostart:
            self.start()

    # -- journal -------------------------------------------------------

    def _journal_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.json"

    def result_path(self, job_id: str) -> Path:
        return self.results_dir / f"{job_id}.json"

    def _persist(self, job: Job) -> None:
        atomic_write_json(self._journal_path(job.job_id), job.to_dict())

    def _recover(self) -> None:
        """Re-adopt journaled jobs: terminal ones as history,
        interrupted ones (queued *or* running — a running job whose
        server died never finished) back onto the queue."""
        for path in sorted(self.jobs_dir.glob("*.json")):
            try:
                job = Job.from_dict(json.loads(path.read_text()))
            except (OSError, json.JSONDecodeError, JobError):
                # A torn or foreign journal entry is skipped, not
                # fatal: atomic writes make this near-impossible for
                # our own entries, and one bad file must not take the
                # whole service down.
                continue
            self._jobs[job.job_id] = job
            runtime = _Runtime()
            if job.finished:
                runtime.finished.set()
            elif job.state != QUEUED:
                job.state = QUEUED
                self._persist(job)
            self._runtime[job.job_id] = runtime
            stem, _, number = job.job_id.partition("-")
            if stem == "job" and number.isdigit():
                self._seq = max(self._seq, int(number))

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Begin (or resume) draining the queue."""
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.concurrency,
                    thread_name_prefix="resim-job")
            pending = [job for job in self._sorted_jobs()
                       if job.state == QUEUED]
            for job in pending:
                self._pool.submit(self._run, job)

    def close(self, *, wait: bool = True) -> None:
        """Stop accepting work and (by default) wait for running jobs;
        queued-but-unstarted jobs stay journaled for the next start."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait, cancel_futures=True)

    def _sorted_jobs(self) -> list[Job]:
        return [self._jobs[job_id] for job_id in sorted(self._jobs)]

    # -- submission ----------------------------------------------------

    def submit(self, request: Mapping) -> tuple[Job, bool]:
        """Accept one request document; returns ``(job, coalesced)``.

        ``coalesced`` is True when an identical request was already
        queued or running and that job was returned instead of a new
        one.
        """
        if not isinstance(request, Mapping):
            raise JobError(
                f"request must be a mapping, got "
                f"{type(request).__name__}")
        key = request_key(request)
        with self._lock:
            for job in self._sorted_jobs():
                if job.request_key == key and not job.finished:
                    return job, True
            self._seq += 1
            job = Job(job_id=f"job-{self._seq:06d}",
                      request=dict(request), request_key=key)
            self._jobs[job.job_id] = job
            self._runtime[job.job_id] = _Runtime()
            self._persist(job)
            self.emit(job.job_id, {"event": "state", "state": QUEUED})
            if self._pool is not None:
                self._pool.submit(self._run, job)
        return job, False

    # -- execution -----------------------------------------------------

    def _transition(self, job: Job, state: str, *,
                    error: str | None = None) -> None:
        with self._lock:
            job.state = state
            job.error = error
            self._persist(job)
        event = {"event": "state", "state": state}
        if error is not None:
            event["error"] = error
        self.emit(job.job_id, event)
        if state in TERMINAL_STATES:
            self._runtime[job.job_id].finished.set()

    def _run(self, job: Job) -> None:
        with self._lock:
            if job.state != QUEUED:
                return
            if self._runtime[job.job_id].cancel.is_set():
                pass  # transition below, outside the lock
            else:
                job.state = RUNNING
                self._persist(job)
        if job.state == QUEUED:  # cancelled before it ever ran
            self._transition(job, CANCELLED)
            return
        self.emit(job.job_id, {"event": "state", "state": RUNNING})
        context = JobContext(self, job)
        try:
            payload = self._execute(job, context)
        except JobCancelled:
            self._transition(job, CANCELLED)
        except Exception as error:  # noqa: BLE001 — job isolation:
            # one failed campaign must not take the service down.
            self._transition(
                job, FAILED,
                error=f"{type(error).__name__}: {error}")
        else:
            atomic_write_json(self.result_path(job.job_id), payload)
            self._transition(job, DONE)

    # -- inspection / control ------------------------------------------

    def get(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise JobError(f"unknown job {job_id!r}") from None

    def jobs(self) -> list[Job]:
        with self._lock:
            return self._sorted_jobs()

    def counts(self) -> dict[str, int]:
        with self._lock:
            tally = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                tally[job.state] += 1
        return tally

    def cancel(self, job_id: str) -> Job:
        """Request cancellation (cooperative; see module docstring)."""
        job = self.get(job_id)
        with self._lock:
            if job.finished:
                return job
            self._runtime[job_id].cancel.set()
        self.emit(job_id, {"event": "cancel_requested"})
        return job

    def cancel_requested(self, job_id: str) -> bool:
        return self._runtime[self.get(job_id).job_id].cancel.is_set()

    def update_job(self, job_id: str, **fields_: int | None) -> None:
        """Update journaled tally fields (points/cache counters)."""
        job = self.get(job_id)
        with self._lock:
            for name, value in sorted(fields_.items()):
                if name not in ("cache_hits", "cache_misses",
                                "points_done", "points_total"):
                    raise JobError(
                        f"not an updatable job field: {name!r}")
                setattr(job, name, value)
            self._persist(job)

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until the job reaches a terminal state."""
        job = self.get(job_id)
        if not self._runtime[job.job_id].finished.wait(timeout):
            raise JobError(
                f"job {job_id!r} did not finish within {timeout}s")
        return job

    def result_document(self, job_id: str) -> dict:
        """The persisted result payload of a finished job."""
        job = self.get(job_id)
        if job.state != DONE:
            raise JobError(
                f"job {job_id!r} has no result (state {job.state!r})")
        try:
            return json.loads(self.result_path(job_id).read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise JobError(
                f"result of job {job_id!r} is unreadable: {error}"
            ) from error

    # -- events --------------------------------------------------------

    def emit(self, job_id: str, event: Mapping) -> None:
        """Append one event to a job's in-memory stream (events are
        ephemeral; the journal carries durable state)."""
        with self._lock:
            runtime = self._runtime.get(job_id)
            if runtime is None:
                raise JobError(f"unknown job {job_id!r}")
            entry = {"seq": len(runtime.events) + 1, "job_id": job_id}
            entry.update(event)
            runtime.events.append(entry)

    def events_since(self, job_id: str, after: int = 0) -> list[dict]:
        """Events with ``seq > after``, in order."""
        job = self.get(job_id)
        with self._lock:
            events = self._runtime[job.job_id].events
            return [dict(entry) for entry in events
                    if entry["seq"] > after]

    def describe(self) -> str:
        return (f"JobManager({str(self.root)!r}, "
                f"concurrency={self.concurrency})")

    __repr__ = describe
