"""``repro.serve`` — the campaign service: async submission API +
content-addressed result cache.

The ROADMAP's north star is serving heavy design-space-exploration
traffic; this package is that front door.  A long-lived
``resim serve`` process accepts simulate/sweep/search submissions as
plain JSON documents, schedules them onto the existing execution
backends with bounded concurrency and a crash-safe journal, streams
progress as line-delimited JSON, and — the production-scale move —
memoizes every completed work unit in a content-addressed store, so
overlapping queries from any number of clients simulate each distinct
computation exactly once.  The pieces:

* :mod:`repro.serve.canon` — cache-key derivation: canonicalized
  spec + trace content digest + engine version;
* :mod:`repro.serve.cache` — :class:`CacheStore` (atomic, versioned,
  self-invalidating on engine bumps) and :class:`CachingBackend`
  (memoizes any :class:`~repro.exec.ExecutionBackend`);
* :mod:`repro.serve.jobs` — :class:`JobManager`: submission
  coalescing, bounded concurrency, journal-backed restart recovery,
  cooperative cancellation;
* :mod:`repro.serve.app` — :class:`CampaignService` (request
  validation + job execution) and the server shells;
* :mod:`repro.serve.http` — the stdlib asyncio HTTP/JSON layer;
* :mod:`repro.serve.client` — :class:`ServiceClient`, the
  programmatic twin of ``resim client``.

Quick start (one process)::

    from repro.serve import BackgroundServer, CampaignService, \\
        ServiceClient

    service = CampaignService("campaign-root")
    with BackgroundServer(service) as server:
        client = ServiceClient(*server.address)
        answer = client.submit({"kind": "sweep",
                                "axes": {"rob_entries": [8, 16]},
                                "workload": "gzip", "budget": 4000})
        client.wait(answer["job_id"])
        print(client.result(answer["job_id"])["cache"])
"""

from repro.serve.app import (
    BackgroundServer,
    CampaignServer,
    CampaignService,
    DEFAULT_HOST,
    DEFAULT_PORT,
    REQUEST_KINDS,
    ServiceError,
)
from repro.serve.cache import (
    CACHE_SCHEMA,
    CacheError,
    CacheStore,
    CachingBackend,
)
from repro.serve.canon import (
    CACHE_KEY_LENGTH,
    CanonError,
    ENGINE_VERSION,
    KEY_SCHEMA,
    cache_key,
    canonical_spec,
    trace_digest,
)
from repro.serve.client import ClientError, ServiceClient
from repro.serve.jobs import (
    JOB_SCHEMA,
    JOB_STATES,
    Job,
    JobCancelled,
    JobContext,
    JobError,
    JobManager,
    TERMINAL_STATES,
    request_key,
)

__all__ = [
    "BackgroundServer",
    "CACHE_KEY_LENGTH",
    "CACHE_SCHEMA",
    "CampaignServer",
    "CampaignService",
    "CanonError",
    "CacheError",
    "CacheStore",
    "CachingBackend",
    "ClientError",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "ENGINE_VERSION",
    "JOB_SCHEMA",
    "JOB_STATES",
    "Job",
    "JobCancelled",
    "JobContext",
    "JobError",
    "JobManager",
    "KEY_SCHEMA",
    "REQUEST_KINDS",
    "ServiceClient",
    "ServiceError",
    "TERMINAL_STATES",
    "cache_key",
    "canonical_spec",
    "request_key",
    "trace_digest",
]
