"""A minimal HTTP/1.1 JSON layer over the campaign service.

Stdlib-only by design (the repo bakes in no web framework): one
``asyncio.start_server`` callback parses a single request per
connection (``Connection: close``), routes it, and answers JSON.  The
API surface::

    GET  /v1/health                     service liveness + job counts
    GET  /v1/cache                      cache hit/miss/occupancy stats
    GET  /v1/jobs                       every job's status document
    POST /v1/jobs                       submit a request document
    GET  /v1/jobs/<id>                  one job's status document
    GET  /v1/jobs/<id>/result           the finished job's payload
    GET  /v1/jobs/<id>/events[?after=N] NDJSON progress stream
    POST /v1/jobs/<id>/cancel           cooperative cancellation

Error contract: malformed documents and unknown request kinds are
``400`` with ``{"error": ...}``; unknown jobs and paths are ``404``;
wrong methods are ``405``; asking a job that is not ``done`` for its
result is ``409``.  The events endpoint streams line-delimited JSON
(one event object per line) and closes once the job reaches a
terminal state — the long-poll primitive ``resim client watch``
builds on.

All responses are canonical JSON (``sort_keys=True``): service
answers are documents like any other in this repo and may be hashed
or byte-compared by clients.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qs, urlsplit

from repro.serve.jobs import DONE, JobError

#: Submissions larger than this are refused outright (413) — request
#: documents are small; anything bigger is a client bug.
MAX_BODY_BYTES = 4 << 20

#: Seconds between polls of a streaming job's event log.
EVENT_POLL_SECONDS = 0.05

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class _HttpError(Exception):
    """An error response decided before (or instead of) routing."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class _Request:
    method: str
    path: str
    query: dict[str, list[str]] = field(default_factory=dict)
    body: bytes = b""

    def json_body(self) -> object:
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _HttpError(
                400, f"request body is not valid JSON: {error}"
            ) from error


class HttpApi:
    """Route parsed requests into a
    :class:`~repro.serve.app.CampaignService`."""

    def __init__(self, service) -> None:
        self.service = service

    # -- connection handling -------------------------------------------

    async def handle(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        """One connection: parse, route, respond, close."""
        try:
            try:
                request = await self._read_request(reader)
                if request is None:
                    return
                await self._dispatch(request, writer)
            except _HttpError as error:
                self._respond(writer, error.status,
                              {"error": error.message})
            except (ConnectionError, asyncio.IncompleteReadError):
                return
            except Exception as error:  # noqa: BLE001 — the server
                # must answer 500 and survive, whatever a handler
                # raised.
                self._respond(
                    writer, 500,
                    {"error": f"{type(error).__name__}: {error}"})
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> _Request | None:
        start_line = await reader.readline()
        if not start_line.strip():
            return None  # client connected and went away
        parts = start_line.decode("latin-1").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _HttpError(400, "malformed request line")
        method, target = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, sep, value = line.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise _HttpError(400, "malformed Content-Length") from None
        if length < 0:
            raise _HttpError(400, "malformed Content-Length")
        if length > MAX_BODY_BYTES:
            raise _HttpError(
                413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        split = urlsplit(target)
        return _Request(method=method, path=split.path,
                        query=parse_qs(split.query), body=body)

    # -- responses -----------------------------------------------------

    def _respond(self, writer: asyncio.StreamWriter, status: int,
                 body_doc: dict) -> None:
        body = (json.dumps(body_doc, sort_keys=True) + "\n").encode()
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)

    # -- routing -------------------------------------------------------

    async def _dispatch(self, request: _Request,
                        writer: asyncio.StreamWriter) -> None:
        segments = [part for part in request.path.split("/") if part]
        if not segments or segments[0] != "v1":
            raise _HttpError(404, f"no such path {request.path!r}")
        route = segments[1:]
        method = request.method

        if route == ["health"]:
            self._require_method(method, "GET")
            self._respond(writer, 200, self.service.health_document())
        elif route == ["cache"]:
            self._require_method(method, "GET")
            self._respond(writer, 200, self.service.store.stats_document())
        elif route == ["jobs"]:
            if method == "GET":
                self._respond(writer, 200, {
                    "jobs": [self.service.status_document(job)
                             for job in self.service.manager.jobs()]})
            elif method == "POST":
                self._submit(request, writer)
            else:
                raise _HttpError(405, f"{method} not allowed here")
        elif len(route) == 2 and route[0] == "jobs":
            self._require_method(method, "GET")
            job = self._job(route[1])
            self._respond(writer, 200, self.service.status_document(job))
        elif len(route) == 3 and route[0] == "jobs" \
                and route[2] == "result":
            self._require_method(method, "GET")
            self._result(route[1], writer)
        elif len(route) == 3 and route[0] == "jobs" \
                and route[2] == "cancel":
            self._require_method(method, "POST")
            job = self.service.manager.cancel(self._job(route[1]).job_id)
            self._respond(writer, 200, self.service.status_document(job))
        elif len(route) == 3 and route[0] == "jobs" \
                and route[2] == "events":
            self._require_method(method, "GET")
            await self._stream_events(route[1], request, writer)
        else:
            raise _HttpError(404, f"no such path {request.path!r}")

    @staticmethod
    def _require_method(method: str, expected: str) -> None:
        if method != expected:
            raise _HttpError(405, f"{method} not allowed here")

    def _job(self, job_id: str):
        try:
            return self.service.manager.get(job_id)
        except JobError as error:
            raise _HttpError(404, str(error)) from error

    def _submit(self, request: _Request,
                writer: asyncio.StreamWriter) -> None:
        body_doc = request.json_body()
        if not isinstance(body_doc, dict):
            raise _HttpError(400, "submission must be a JSON object")
        try:
            job, coalesced = self.service.submit(body_doc)
        except ValueError as error:
            # ServiceError, CanonError, SweepError, SessionError —
            # the whole validation family means "fix your request".
            raise _HttpError(400, str(error)) from error
        self._respond(writer, 200 if coalesced else 202, {
            "job_id": job.job_id,
            "state": job.state,
            "request_key": job.request_key,
            "coalesced": coalesced,
        })

    def _result(self, job_id: str,
                writer: asyncio.StreamWriter) -> None:
        job = self._job(job_id)
        if job.state != DONE:
            raise _HttpError(
                409,
                f"job {job_id!r} has no result yet "
                f"(state {job.state!r}"
                + (f": {job.error}" if job.error else "") + ")")
        self._respond(writer, 200, {
            "job_id": job.job_id,
            "state": job.state,
            "cache": {"hits": job.cache_hits,
                      "misses": job.cache_misses},
            "result": self.service.manager.result_document(job_id),
        })

    async def _stream_events(self, job_id: str, request: _Request,
                             writer: asyncio.StreamWriter) -> None:
        """NDJSON event stream: everything after ``?after=N``, then
        live events until the job is terminal."""
        job = self._job(job_id)
        try:
            after = int(request.query.get("after", ["0"])[0])
        except ValueError:
            raise _HttpError(400, "malformed 'after' parameter") \
                from None
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))
        await writer.drain()
        manager = self.service.manager
        seq = after
        while True:
            for event in manager.events_since(job_id, seq):
                seq = event["seq"]
                line = json.dumps(event, sort_keys=True) + "\n"
                writer.write(line.encode())
            await writer.drain()
            if job.finished and not manager.events_since(job_id, seq):
                break
            await asyncio.sleep(EVENT_POLL_SECONDS)
