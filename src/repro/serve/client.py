"""A stdlib HTTP client for the campaign service (``resim client``).

:class:`ServiceClient` speaks the :mod:`repro.serve.http` contract
with nothing beyond ``http.client``: one connection per call
(the server answers ``Connection: close``), JSON documents both ways,
and a line-by-line reader for the NDJSON event stream.  It is the
programmatic twin of the ``resim client`` subcommand and the driver
the test suite, the benchmark, and the CI smoke job all share.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection, HTTPException
from collections.abc import Callable, Iterator, Mapping, Sequence

#: Default per-request socket timeout.  Generous: a submission answer
#: is instant, but a watch stream stays open for the whole job.
DEFAULT_TIMEOUT_SECONDS = 600.0


class ClientError(RuntimeError):
    """A failed request: transport trouble or a non-2xx answer.

    ``status`` is the HTTP status code when the server answered
    (0 when the failure was transport-level), so callers can
    distinguish "your request is malformed" (4xx) from "the service
    is gone".
    """

    def __init__(self, message: str, *, status: int = 0) -> None:
        super().__init__(message)
        self.status = status


class ServiceClient:
    """Talk to one campaign service endpoint."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8437, *,
                 timeout: float = DEFAULT_TIMEOUT_SECONDS) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport -----------------------------------------------------

    def _open(self, method: str, path: str,
              body_doc: Mapping | None = None) -> tuple[int, object]:
        """One request; returns ``(status, response_object)``.  The
        caller owns reading/closing the response."""
        connection = HTTPConnection(self.host, self.port,
                                    timeout=self.timeout)
        headers = {"Accept": "application/json"}
        body = None
        if body_doc is not None:
            body = json.dumps(dict(body_doc), sort_keys=True).encode()
            headers["Content-Type"] = "application/json"
        try:
            connection.request(method, path, body=body,
                               headers=headers)
            response = connection.getresponse()
        except (OSError, HTTPException) as error:
            connection.close()
            raise ClientError(
                f"cannot reach campaign service at "
                f"{self.host}:{self.port}: {error}") from error
        return response.status, response

    def request(self, method: str, path: str,
                body_doc: Mapping | None = None) -> dict:
        """One JSON round trip; raises :class:`ClientError` on any
        non-2xx answer (carrying the server's ``error`` message)."""
        status, response = self._open(method, path, body_doc)
        try:
            raw = response.read()
        finally:
            response.close()
        try:
            answer = json.loads(raw.decode()) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ClientError(
                f"service answered non-JSON to {method} {path}: "
                f"{error}", status=status) from error
        if status >= 400:
            detail = answer.get("error", raw.decode(errors="replace")) \
                if isinstance(answer, dict) else str(answer)
            raise ClientError(
                f"{method} {path} failed ({status}): {detail}",
                status=status)
        if not isinstance(answer, dict):
            raise ClientError(
                f"service answered a non-object document to "
                f"{method} {path}", status=status)
        return answer

    # -- API surface ---------------------------------------------------

    def health(self) -> dict:
        return self.request("GET", "/v1/health")

    def cache_stats(self) -> dict:
        return self.request("GET", "/v1/cache")

    def jobs(self) -> list[dict]:
        return self.request("GET", "/v1/jobs")["jobs"]

    def submit(self, request_doc: Mapping) -> dict:
        """Submit one request document; returns the submission answer
        (``job_id``, ``state``, ``coalesced``, ``request_key``)."""
        return self.request("POST", "/v1/jobs", request_doc)

    def batch_submit(self, request_docs: Sequence[Mapping]
                     ) -> list[dict]:
        """Submit several request documents, in order."""
        return [self.submit(request_doc)
                for request_doc in request_docs]

    def status(self, job_id: str) -> dict:
        return self.request("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        """The finished job's result envelope (409 → ClientError
        while it is still running)."""
        return self.request("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        return self.request("POST", f"/v1/jobs/{job_id}/cancel")

    def events(self, job_id: str, *, after: int = 0
               ) -> Iterator[dict]:
        """Iterate the job's NDJSON event stream; ends when the job
        reaches a terminal state (the server closes the stream)."""
        status, response = self._open(
            "GET", f"/v1/jobs/{job_id}/events?after={after}")
        if status >= 400:
            raw = response.read()
            response.close()
            try:
                detail = json.loads(raw.decode()).get("error", "")
            except (UnicodeDecodeError, json.JSONDecodeError,
                    AttributeError):
                detail = raw.decode(errors="replace")
            raise ClientError(
                f"events stream for {job_id!r} failed ({status}): "
                f"{detail}", status=status)
        try:
            while True:
                line = response.readline()
                if not line:
                    break
                text = line.decode().strip()
                if not text:
                    continue
                try:
                    event = json.loads(text)
                except json.JSONDecodeError as error:
                    raise ClientError(
                        f"malformed event line from service: "
                        f"{text!r}") from error
                yield event
        finally:
            response.close()

    def wait(self, job_id: str, *,
             on_event: Callable[[dict], None] | None = None) -> dict:
        """Consume the event stream until the job is terminal; returns
        the final status document."""
        for event in self.events(job_id):
            if on_event is not None:
                on_event(event)
        return self.status(job_id)

    def describe(self) -> str:
        return f"ServiceClient({self.host!r}, {self.port})"

    __repr__ = describe
