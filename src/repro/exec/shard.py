"""Sharded design-point execution: split one run, merge one result.

The paper's bulk mode simulates one prepared trace across a whole
design grid; PR 4 made each design point a serializable
:class:`~repro.exec.unit.WorkUnit`, but a point was still a single
monolithic run — the slowest axis of a sweep was the longest trace, no
matter how many workers sat idle.  This module adds intra-point
parallelism on the two halves earlier layers already provide:

* :class:`ShardPlan` splits one run into ``N`` contiguous
  **segment-range** shards of its v2 trace file (the ranges
  :class:`~repro.trace.source.FileSource` replays), balanced by record
  count and snapped to entries of
  :func:`~repro.trace.fileio.read_segment_table`;
* :func:`shard_units` turns a monolithic work unit into one unit per
  shard (same spec plus a ``segments`` range, shard-tagged), runnable
  by any :class:`~repro.exec.backends.ExecutionBackend`;
* :class:`ShardReducer` / :func:`merge_result_documents` collect the
  per-shard result documents and emit **one merged point result** via
  :meth:`SimulationStatistics.merge
  <repro.core.stats.SimulationStatistics.merge>`, carrying shard
  provenance — the merged document is a valid checkpoint, so sharded
  sweeps resume exactly like monolithic ones.

Exact vs. approximate
---------------------
Shards start **cold** (empty caches and predictors, pipeline drained,
a fetch PC realigned only at the first committed taken branch), which
makes a merged result a form of sampled simulation in the spirit of
ChampSim's warmup/ROI regioning and the RIKEN Post-K simulator's
MPI-parallel region decomposition (see PAPERS.md).  The engine's
counters split into two classes:

* **exact-sum** — trace-authoritative counts that every record
  contributes exactly once regardless of where the trace is cut:
  ``committed_instructions``, ``committed_branches``,
  ``committed_loads``, ``committed_stores``, ``taken_branches`` and
  ``trace_records_consumed`` for *any* segment split, plus
  ``mispredictions`` when boundaries are **clean** (the planner below
  guarantees it) — the conformance suite asserts exact equality;
* **approximate** — anything cycle-, PC- or warm-state-dependent:
  ``major_cycles`` (hence IPC), stall cycles, the fetched/discarded
  wrong-path split, cache and misfetch counts, occupancy averages.
  The conformance suite bounds the monolithic-vs-sharded IPC delta
  instead of pretending bit-identity; each shard honors the existing
  warmup controls (``warmup_instructions`` in the spec) for callers
  who want to trade exact sums for warmer state.

A boundary is *clean* when the first record of its segment is on the
correct path (untagged).  A dirty boundary would cut a branch from its
wrong-path block — the branch's shard could no longer see the tag that
*is* the misprediction signal — so the planner probes boundary
segments and slides each cut to the nearest clean segment.  Wrong-path
blocks are generation-bounded to far fewer records than one segment,
so a clean boundary always exists within a step or two.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from pathlib import Path

from repro.core.stats import SimulationStatistics
from repro.exec.unit import (
    ExecError,
    RESULT_SCHEMA,
    WorkUnit,
    atomic_write_json,
)
from repro.serialize import stats_from_dict, stats_to_dict
from repro.trace.fileio import (
    TraceSegment,
    iter_trace_records,
    read_segment_table,
)

#: Counters whose shard-wise sums equal the monolithic run's exactly
#: (``mispredictions`` requires the planner's clean boundaries; the
#: rest hold for any segment split).  The conformance suite and the CI
#: smoke job assert equality over this set.
EXACT_SUM_COUNTERS = (
    "committed_instructions",
    "committed_branches",
    "committed_loads",
    "committed_stores",
    "taken_branches",
    "trace_records_consumed",
    "mispredictions",
)


def _segment_is_clean(path: str | Path,
                      table: tuple[TraceSegment, ...],
                      index: int,
                      cache: dict[int, bool]) -> bool:
    """True when segment ``index`` starts on the correct path.

    Probing decodes just that segment's payload (bounded by the
    segment size); results are memoized per plan.
    """
    if index not in cache:
        iterator = iter_trace_records(
            path, segments=table[index:index + 1])
        first = next(iterator, None)
        iterator.close()
        cache[index] = first is None or not first.tag
    return cache[index]


@dataclass(frozen=True)
class ShardPlan:
    """How one trace file splits into segment-range shards.

    ``ranges`` are half-open ``(lo, hi)`` segment-index ranges that
    concatenate to the whole segment table; ``records`` is the record
    count of each range.  Plans are produced by :func:`plan_shards`
    and may hold fewer shards than requested (a trace with fewer
    segments than shards — including any v1 trace, whose payload is
    one pseudo-segment — cannot split below segment granularity).
    """

    trace_path: str
    ranges: tuple[tuple[int, int], ...]
    records: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.ranges or len(self.ranges) != len(self.records):
            raise ExecError("malformed shard plan")
        previous = 0
        for lo, hi in self.ranges:
            if lo != previous or hi <= lo:
                raise ExecError(
                    f"shard ranges must be contiguous non-empty "
                    f"segment spans, got {self.ranges}"
                )
            previous = hi

    @property
    def shards(self) -> int:
        return len(self.ranges)

    @property
    def total_records(self) -> int:
        return sum(self.records)

    def describe(self) -> str:
        spans = ", ".join(f"{lo}..{hi - 1} ({count} records)"
                          for (lo, hi), count
                          in zip(self.ranges, self.records, strict=True))
        return f"ShardPlan({self.shards} shard(s): {spans})"

    __repr__ = describe


def plan_shards(trace_path: str | Path, shards: int) -> ShardPlan:
    """Split a trace file's segment table into ``shards`` clean,
    record-balanced contiguous ranges (see module docstring).

    Fewer ranges than requested are returned when the table is too
    small to split (one segment per shard is the floor), so callers
    can always honor a plan without special-casing tiny traces.
    """
    if shards < 1:
        raise ExecError(f"shards must be >= 1, got {shards}")
    table = read_segment_table(trace_path)
    counts = [segment.record_count for segment in table]
    cumulative = [0]
    for count in counts:
        cumulative.append(cumulative[-1] + count)
    total = cumulative[-1]
    segments = len(table)
    if shards == 1 or segments == 1:
        return ShardPlan(str(trace_path), ((0, segments),), (total,))

    effective = min(shards, segments)
    cache: dict[int, bool] = {}
    boundaries: list[int] = []
    previous = 0
    for k in range(1, effective):
        if previous + 1 > segments - 1:
            break  # earlier snaps used up the remaining boundaries
        target = (total * k) // effective
        candidate = bisect_left(cumulative, target)
        candidate = min(max(candidate, previous + 1), segments - 1)
        # Nearest clean segment in *either* direction (forward wins
        # ties).  Scanning all the way forward before ever looking
        # backward would let one dirty stretch push this boundary far
        # past later targets and starve the trailing shards down to
        # single segments.  Backward stops at previous + 1 (a boundary
        # equal to the previous one would make an empty shard);
        # forward stops at segments - 1 (the last segment belongs to
        # the final shard).
        clean = None
        for distance in range(segments):
            forward = candidate + distance
            if forward <= segments - 1 and _segment_is_clean(
                    trace_path, table, forward, cache):
                clean = forward
                break
            backward = candidate - distance
            if distance and backward >= previous + 1 \
                    and _segment_is_clean(
                        trace_path, table, backward, cache):
                clean = backward
                break
        if clean is None:
            continue  # no clean cut in this span: merge into neighbor
        boundaries.append(clean)
        previous = clean
    edges = [0, *boundaries, segments]
    ranges = tuple((edges[i], edges[i + 1])
                   for i in range(len(edges) - 1))
    records = tuple(cumulative[hi] - cumulative[lo]
                    for lo, hi in ranges)
    return ShardPlan(str(trace_path), ranges, records)


def shard_unit_id(unit_id: str, index: int, shards: int) -> str:
    """Stable id of one shard of a unit (also its queue filename
    stem).  The shard count is part of the id, so re-planning with a
    different ``--shards`` cannot collide with (or revive) a previous
    plan's per-shard results."""
    return f"{unit_id}.s{index}of{shards}"


def shard_units(base: WorkUnit, plan: ShardPlan) -> tuple[WorkUnit, ...]:
    """Split one monolithic work unit into one unit per plan shard.

    Each shard unit keeps the base spec (config, trace, start PC,
    warmup/ROI controls all ride along) plus its ``segments`` range;
    its result lands next to the base unit's result path, and a
    ``shard`` tag records which slice of which unit it is — the
    identity :class:`ShardReducer` and resume checks match on.
    """
    if "segments" in base.spec:
        raise ExecError(
            f"unit {base.unit_id!r} is already segment-restricted; "
            f"shard the unsharded unit instead"
        )
    units = []
    base_path = Path(base.result_path)
    for index, (lo, hi) in enumerate(plan.ranges):
        spec = dict(base.spec)
        spec["segments"] = [lo, hi]
        tags = dict(base.tags)
        tags["shard"] = {"index": index, "of": plan.shards,
                         "unit": base.unit_id}
        uid = shard_unit_id(base.unit_id, index, plan.shards)
        result_path = base_path.with_name(
            f"{base_path.stem}.s{index}of{plan.shards}"
            f"{base_path.suffix}")
        units.append(WorkUnit(unit_id=uid, spec=spec,
                              result_path=str(result_path), tags=tags))
    return tuple(units)


def _shard_provenance(payload: dict,
                      stats: SimulationStatistics,
                      position: int) -> list[dict]:
    """Provenance entries one part contributes to a merged document.

    A part that is itself a merged document contributes its flattened
    shard list (so ``resim stats merge`` composes associatively); a
    plain shard result contributes one entry describing its slice.
    """
    if stats.shards:
        return [dict(entry) for entry in stats.shards]
    shard_tag = payload.get("shard")
    entry: dict = {
        "index": (shard_tag.get("index", position)
                  if isinstance(shard_tag, dict) else position),
        "records": int(stats.trace_records_consumed),
        "cycles": int(stats.major_cycles),
        "instructions": int(stats.committed_instructions),
    }
    segments = payload.get("spec", {}).get("segments")
    if segments is not None:
        entry["segments"] = [int(segments[0]), int(segments[1])]
    return [entry]


def merge_result_documents(
    payloads: list[dict],
    *,
    unit_id: str | None = None,
    spec: dict | None = None,
    tags: dict | None = None,
) -> dict:
    """Reduce per-shard result documents into one merged document.

    Every payload must be a successful result document
    (:data:`~repro.exec.unit.RESULT_SCHEMA`, a ``stats`` dict, no
    ``error``) and all must describe the **same configuration** —
    merging different design points would produce statistics of no
    machine at all.  The merged document carries the summed/pooled
    statistics (with flat shard provenance in ``stats.shards``) plus a
    top-level ``sharded`` summary, and — given the monolithic
    ``unit_id``/``spec``/``tags`` — is a drop-in sweep checkpoint.
    """
    if not payloads:
        raise ExecError("nothing to merge: no result documents")
    for payload in payloads:
        if not isinstance(payload, dict) \
                or payload.get("schema") != RESULT_SCHEMA:
            raise ExecError(
                f"cannot merge: not a schema-{RESULT_SCHEMA} result "
                f"document"
            )
        if "error" in payload:
            error = payload.get("error") or {}
            raise ExecError(
                f"cannot merge failed shard "
                f"{payload.get('unit_id')!r}: {error.get('type')}: "
                f"{error.get('message')}"
            )
        if not isinstance(payload.get("stats"), dict):
            raise ExecError(
                f"cannot merge: document "
                f"{payload.get('unit_id')!r} has no statistics")
    config = payloads[0].get("config")
    for payload in payloads[1:]:
        if payload.get("config") != config:
            raise ExecError(
                "cannot merge results of different design points: "
                f"{payloads[0].get('unit_id')!r} and "
                f"{payload.get('unit_id')!r} disagree on the "
                f"processor configuration"
            )

    def run_identity(payload: dict) -> dict | None:
        # Everything but the shard's slice: two results merge only if
        # they simulated the same trace under the same parameters.
        # None (no spec recorded) cannot prove a mismatch.
        document_spec = payload.get("spec")
        if not isinstance(document_spec, dict):
            return None
        return {key: value for key, value in document_spec.items()
                if key != "segments"}

    identities = [(payload, run_identity(payload))
                  for payload in payloads]
    known = [(payload, identity) for payload, identity in identities
             if identity is not None]
    for payload, identity in known[1:]:
        if identity != known[0][1]:
            raise ExecError(
                "cannot merge results of different runs: "
                f"{known[0][0].get('unit_id')!r} and "
                f"{payload.get('unit_id')!r} disagree on the run "
                f"spec (trace, budget, seed, or windowing)"
            )
    parts = [stats_from_dict(payload["stats"]) for payload in payloads]
    provenance: list[dict] = []
    for position, (payload, stats) in enumerate(zip(payloads, parts, strict=True)):
        provenance.extend(_shard_provenance(payload, stats, position))
    merged = parts[0].merge(parts[1:], shards=provenance)
    document = {
        "schema": RESULT_SCHEMA,
        "unit_id": (unit_id if unit_id is not None
                    else payloads[0].get("unit_id")),
        "config": config,
        "stats": stats_to_dict(merged),
        "sharded": {"shards": len(provenance),
                    "documents": len(payloads)},
        **(tags or {}),
    }
    if spec is not None:
        document["spec"] = dict(spec)
    elif known:
        # Standalone merges keep the run identity (the shared spec
        # minus the per-shard slice), so a merged document can itself
        # be merged further without losing the cross-run guard.
        document["spec"] = known[0][1]
    return document


class ShardReducer:
    """Collects one design point's per-shard results; emits the merged
    point result.

    Construction takes the **monolithic** unit (the spec without a
    ``segments`` range — what a 1-shard run would have executed) and
    the plan that split it.  Feed shard result documents to
    :meth:`add` (in any order; resume paths feed previously persisted
    ones); once :attr:`complete`, :meth:`write` atomically writes the
    merged document to the monolithic unit's ``result_path`` — which
    makes it the design point's checkpoint, resumable like any other.
    """

    def __init__(self, unit: WorkUnit, plan: ShardPlan) -> None:
        self._unit = unit
        self._plan = plan
        self._parts: dict[int, dict] = {}

    @property
    def unit(self) -> WorkUnit:
        return self._unit

    @property
    def plan(self) -> ShardPlan:
        return self._plan

    @property
    def expected(self) -> int:
        return self._plan.shards

    @property
    def collected(self) -> int:
        return len(self._parts)

    @property
    def complete(self) -> bool:
        return len(self._parts) == self._plan.shards

    def add(self, payload: dict) -> None:
        """Accept one shard's result document."""
        shard_tag = payload.get("shard") \
            if isinstance(payload, dict) else None
        if not isinstance(shard_tag, dict) \
                or not isinstance(shard_tag.get("index"), int):
            raise ExecError(
                f"result document for {self._unit.unit_id!r} carries "
                f"no shard tag; was it produced by shard_units()?"
            )
        index = shard_tag["index"]
        if shard_tag.get("unit") != self._unit.unit_id \
                or shard_tag.get("of") != self._plan.shards \
                or not 0 <= index < self._plan.shards:
            raise ExecError(
                f"shard tag {shard_tag} does not belong to the "
                f"{self._plan.shards}-shard plan of "
                f"{self._unit.unit_id!r}"
            )
        if index in self._parts:
            raise ExecError(
                f"duplicate result for shard {index} of "
                f"{self._unit.unit_id!r}"
            )
        self._parts[index] = payload

    def merged(self) -> dict:
        """The merged point document (requires :attr:`complete`)."""
        if not self.complete:
            missing = sorted(set(range(self._plan.shards))
                             - set(self._parts))
            raise ExecError(
                f"cannot merge {self._unit.unit_id!r}: shard(s) "
                f"{missing} not collected yet"
            )
        ordered = [self._parts[index]
                   for index in range(self._plan.shards)]
        return merge_result_documents(
            ordered,
            unit_id=self._unit.unit_id,
            spec=dict(self._unit.spec),
            tags=dict(self._unit.tags),
        )

    def write(self) -> dict:
        """Merge and atomically persist to the monolithic unit's
        result path; returns the merged document."""
        document = self.merged()
        atomic_write_json(self._unit.result_path, document)
        return document

    def describe(self) -> str:
        return (f"ShardReducer({self._unit.unit_id!r}, "
                f"{self.collected}/{self.expected} shard(s))")

    __repr__ = describe
