"""Execution backends: *how* a batch of work units actually runs.

The simulation core answers "what does design point X score?"; a
backend answers "on which CPUs?".  Keeping the two separated (the
lesson of simulator-generation work: the fast core must not know how
runs are dispatched) means every bulk consumer — grid sweeps, adaptive
search, future socket/SSH fleets — is written once against
:class:`ExecutionBackend` and gains each new dispatch mechanism for
free.

Three implementations ship:

* :class:`SerialBackend` — in-process, in-order; the reference
  semantics everything else must match bit-for-bit;
* :class:`ProcessPoolBackend` — a ``ProcessPoolExecutor`` fan-out on
  one host (the sweep runner's historical behavior, unchanged);
* :class:`~repro.exec.queue.DirectoryQueueBackend` — a shared-
  filesystem queue drained by ``resim worker`` processes on any
  number of hosts (see :mod:`repro.exec.queue`).

All three run the same :func:`~repro.exec.unit.execute_unit` on the
same serializable :class:`~repro.exec.unit.WorkUnit`\\ s, and the
engine is deterministic, so for a fixed unit batch every backend
produces byte-identical result documents (the test suite asserts it).

Backends are registered in :data:`BACKENDS` so CLI flags and scripts
can name them (``--backend queue``), the same registry idiom every
other pluggable component family uses.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, as_completed
from collections.abc import Callable, Sequence

from repro.exec.unit import ExecError, WorkUnit, execute_unit
from repro.utils.registry import Registry

#: Named backend classes (``serial``, ``pool``, ``queue``); the CLI
#: resolves ``--backend`` values here, so a new backend registered by
#: an extension becomes a valid flag with no CLI change.
BACKENDS: Registry[type] = Registry("execution backend")

#: Callback invoked as each unit finishes: ``(unit, payload)``.  The
#: payload is the unit's result document; for backends that tolerate
#: per-unit failure (the directory queue) it may be an error document
#: (``"error"`` key) — in-process backends raise instead.
OnResult = Callable[[WorkUnit, dict], None]


class ExecutionBackend(ABC):
    """Run serializable work units to completion.

    The protocol is submit-then-drain: :meth:`submit` enqueues units,
    :meth:`drain` executes everything enqueued and returns
    ``{unit_id: result_document}``.  :meth:`run_units` is the
    convenience composition of the two.  A backend instance is
    reusable — each :meth:`drain` consumes the queue, so adaptive
    search can push batch after batch through one backend.
    """

    #: Human-readable backend name (also its registry key).
    name = "?"

    def __init__(self) -> None:
        self._queue: list[WorkUnit] = []

    def submit(self, unit: WorkUnit) -> None:
        """Enqueue one unit for the next :meth:`drain`."""
        if not isinstance(unit, WorkUnit):
            raise ExecError(
                f"submit() takes a WorkUnit, got {type(unit).__name__}")
        if any(queued.unit_id == unit.unit_id for queued in self._queue):
            raise ExecError(
                f"unit {unit.unit_id!r} is already enqueued; unit ids "
                f"must be unique within a batch"
            )
        self._queue.append(unit)

    def run_units(self, units: Sequence[WorkUnit] = (), *,
                  on_result: OnResult | None = None) -> dict[str, dict]:
        """Submit a batch and drain it (see :meth:`drain`)."""
        for unit in units:
            self.submit(unit)
        return self.drain(on_result=on_result)

    def drain(self, *,
              on_result: OnResult | None = None) -> dict[str, dict]:
        """Execute every enqueued unit; return documents by unit id."""
        batch, self._queue = self._queue, []
        return self._execute(batch, on_result)

    @abstractmethod
    def _execute(self, batch: Sequence[WorkUnit],
                 on_result: OnResult | None) -> dict[str, dict]:
        """Backend-specific execution of one drained batch."""

    def describe(self) -> str:
        return f"{type(self).__name__}()"

    __repr__ = describe


@BACKENDS.register("serial")
class SerialBackend(ExecutionBackend):
    """In-process, in-order execution — the reference semantics."""

    name = "serial"

    def _execute(self, batch: Sequence[WorkUnit],
                 on_result: OnResult | None) -> dict[str, dict]:
        results: dict[str, dict] = {}
        for unit in batch:
            payload = execute_unit(unit)
            results[unit.unit_id] = payload
            if on_result is not None:
                on_result(unit, payload)
        return results


@BACKENDS.register("pool", aliases=("process-pool",))
class ProcessPoolBackend(ExecutionBackend):
    """``ProcessPoolExecutor`` fan-out on the local host.

    Results arrive in completion order (``on_result`` observes the
    true finish sequence); the returned mapping is keyed by unit id,
    so callers needing a stable order impose their own.  A unit that
    raises re-raises the original (pickled) exception here, exactly
    like the pre-backend sweep runner did.
    """

    name = "pool"

    def __init__(self, workers: int) -> None:
        super().__init__()
        if workers < 1:
            raise ExecError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def _execute(self, batch: Sequence[WorkUnit],
                 on_result: OnResult | None) -> dict[str, dict]:
        results: dict[str, dict] = {}
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            futures = {pool.submit(execute_unit, unit): unit
                       for unit in batch}
            for future in as_completed(futures):
                unit = futures[future]
                payload = future.result()
                results[unit.unit_id] = payload
                if on_result is not None:
                    on_result(unit, payload)
        return results

    def describe(self) -> str:
        return f"ProcessPoolBackend(workers={self.workers})"
