"""Serializable work units — the currency of execution backends.

The whole distributed-execution story rests on one observation: a
ReSim run is already *data*.  PR 2 made every bulk simulation
describable as a plain-dict :meth:`Simulation.from_spec` spec, and
PR 3 made the trace it reads a shared on-disk artifact
(:class:`~repro.trace.source.FileSource`, optionally restricted to a
``segments=(lo, hi)`` shard range).  A :class:`WorkUnit` bundles the
two with a result destination:

* ``spec`` — a ``Simulation.from_spec`` dict (trace path or workload
  name, config, optional segment range / start PC / windowing);
* ``result_path`` — where the executor writes the result JSON,
  atomically, so a crash mid-write never leaves a truncated file;
* ``tags`` — opaque caller payload merged into the result document
  (the sweep runner stores its provenance manifest here, which is why
  an executed unit's result file *is* a valid sweep checkpoint).

Because the engine is a deterministic function of (config, trace), a
unit may be executed anywhere, any number of times, by any backend:
every execution writes the same bytes.  That idempotence is what lets
the directory queue re-run units after worker crashes without risking
duplicated or divergent results.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Mapping, Sequence

from repro.serialize import config_to_dict, stats_to_dict

#: Result/unit document schema; bump on incompatible layout changes.
#: Kept equal to the sweep checkpoint schema on purpose: a unit result
#: *is* a sweep checkpoint when the sweep runner built the unit.
RESULT_SCHEMA = 1

#: Keys the executor itself writes into a result document; tags may
#: not shadow them (a tag silently overwriting "stats" would corrupt
#: every consumer downstream).  "sharded" belongs to the shard
#: reducer (:mod:`repro.exec.shard`) and "sampled" to the region
#: reducer (:mod:`repro.exec.regions`); each stamps its key on the
#: merged point documents it emits.
RESERVED_RESULT_KEYS = frozenset(
    ("schema", "unit_id", "spec", "config", "stats", "error",
     "sharded", "sampled"))

#: Unit identifiers become queue/result filenames; restrict them to
#: characters that cannot traverse paths or collide across platforms.
_UNIT_ID_RE = re.compile(r"^[A-Za-z0-9._-]+$")


class ExecError(ValueError):
    """Raised for malformed work units or misused backends."""


class UnitExecutionError(ExecError):
    """A unit failed on a remote executor.

    Backends that run units in the same interpreter (or a process
    pool, which re-raises pickled exceptions) propagate the original
    exception; the directory queue only sees the error *document* a
    worker wrote, so it raises this carrier instead.  ``kind`` is the
    original exception type name — callers that special-case e.g.
    ``TraceFileError`` match on it.
    """

    def __init__(self, unit_id: str, kind: str, message: str,
                 failed_units: int = 1) -> None:
        detail = (f" ({failed_units - 1} more unit(s) also failed)"
                  if failed_units > 1 else "")
        super().__init__(
            f"work unit {unit_id!r} failed: {kind}: {message}{detail}")
        self.unit_id = unit_id
        self.kind = kind
        self.message = message
        self.failed_units = failed_units


@dataclass(frozen=True)
class WorkUnit:
    """One simulation to run: spec + result destination (+ tags)."""

    unit_id: str
    spec: Mapping
    result_path: str
    tags: Mapping = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.unit_id, str) or \
                not _UNIT_ID_RE.match(self.unit_id):
            raise ExecError(
                f"unit_id must match {_UNIT_ID_RE.pattern} (it names "
                f"queue and result files), got {self.unit_id!r}"
            )
        if not isinstance(self.spec, Mapping):
            raise ExecError(
                f"unit spec must be a mapping, got "
                f"{type(self.spec).__name__}"
            )
        if not isinstance(self.result_path, str) or not self.result_path:
            raise ExecError(
                f"result_path must be a non-empty string, got "
                f"{self.result_path!r}"
            )
        reserved = set(self.tags) & RESERVED_RESULT_KEYS
        if reserved:
            raise ExecError(
                f"unit tags may not shadow result keys "
                f"{', '.join(sorted(reserved))}"
            )
        # Freeze the mappings into plain dicts so units equality-
        # compare and serialize predictably regardless of the
        # caller's mapping type.  (Units stay unhashable: dict
        # fields; key containers by unit_id instead.)
        object.__setattr__(self, "spec", dict(self.spec))
        object.__setattr__(self, "tags", dict(self.tags))

    @classmethod
    def for_trace(
        cls,
        unit_id: str,
        trace_path: str | Path,
        config: Mapping | str,
        result_path: str | Path,
        *,
        segments: tuple[int, int] | None = None,
        start_pc: int | None = None,
        tags: Mapping | None = None,
        engine: str | None = None,
    ) -> WorkUnit:
        """Convenience constructor for the common shape: one stored
        trace (optionally a segment shard of it) simulated under one
        config dict or registered config name.

        ``engine`` selects the engine tier executing the unit (a
        :data:`repro.core.specialize.ENGINES` name); the default
        reference tier is omitted from the spec so specs stay stable
        across versions.  Tiers are bit-identical, so results and
        checkpoints do not depend on the choice.
        """
        spec: dict = {"trace_file": str(trace_path), "config": config}
        if segments is not None:
            spec["segments"] = [int(segments[0]), int(segments[1])]
        if start_pc is not None:
            spec["start_pc"] = int(start_pc)
        if engine is not None and engine != "reference":
            spec["engine"] = str(engine)
        return cls(unit_id=unit_id, spec=spec,
                   result_path=str(result_path), tags=dict(tags or {}))

    def to_dict(self) -> dict:
        """JSON-safe form (inverse of :meth:`from_dict`); this is the
        document the directory queue writes into ``pending/``."""
        return {
            "schema": RESULT_SCHEMA,
            "unit_id": self.unit_id,
            "spec": dict(self.spec),
            "result_path": self.result_path,
            "tags": dict(self.tags),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> WorkUnit:
        if not isinstance(data, Mapping):
            raise ExecError(
                f"unit document must be a mapping, got "
                f"{type(data).__name__}"
            )
        if data.get("schema") != RESULT_SCHEMA:
            raise ExecError(
                f"unsupported unit schema {data.get('schema')!r} "
                f"(this version reads schema {RESULT_SCHEMA})"
            )
        try:
            return cls(unit_id=data["unit_id"], spec=data["spec"],
                       result_path=data["result_path"],
                       tags=data.get("tags", {}))
        except KeyError as error:
            raise ExecError(
                f"unit document missing key {error.args[0]!r}"
            ) from None


def atomic_write_json(path: str | Path, document: dict) -> None:
    """Write-tmpfile-then-rename, the durability idiom every file in
    this layer uses: a crash mid-write leaves the old file (or none),
    never truncated JSON.  The tmp name is per-process unique so two
    executors racing on one result (a stalled worker plus the
    reclaimer that replaced it) cannot consume each other's tmp file.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.parent / f"{target.name}.{os.getpid()}.tmp"
    tmp.write_text(json.dumps(document, sort_keys=True))
    os.replace(tmp, target)


def execute_unit(unit: WorkUnit, observers: Sequence = ()) -> dict:
    """Run one unit and atomically write its result document.

    Module-level (it pickles into process pools) and side-effect-free
    beyond the result file.  ``observers`` attach engine
    instrumentation on the executing side — code does not serialize,
    so e.g. the directory-queue worker adds its lease heartbeat here.
    """
    from repro.session import Simulation  # heavy import, deferred

    simulation = Simulation.from_spec(unit.spec)
    if observers:
        simulation = simulation.with_observer(*observers)
    session = simulation.run()
    payload = {
        "schema": RESULT_SCHEMA,
        "unit_id": unit.unit_id,
        "spec": dict(unit.spec),
        "config": config_to_dict(session.config),
        "stats": stats_to_dict(session.stats),
        **unit.tags,
    }
    atomic_write_json(unit.result_path, payload)
    return payload


def error_document(unit: WorkUnit, error: BaseException) -> dict:
    """The result document a worker writes when a unit raises, so the
    coordinator learns *what* failed instead of waiting forever."""
    return {
        "schema": RESULT_SCHEMA,
        "unit_id": unit.unit_id,
        "spec": dict(unit.spec),
        "error": {"type": type(error).__name__, "message": str(error)},
        **unit.tags,
    }


def result_matches_unit(payload: dict | None, unit: WorkUnit) -> bool:
    """Was this result document produced by exactly this unit?

    Result files live at caller-chosen paths; a path can hold a
    document from an *earlier* unit with the same id but a different
    spec (e.g. a results directory reused after its manifest was
    deleted).  Reusing such a document would silently revive stale
    statistics the caller decided to recompute, so every
    reuse-instead-of-execute decision gates on this identity check:
    same unit id, same spec, same tags.  True for both success and
    error documents — callers distinguish via the ``"error"`` key.
    """
    if payload is None:
        return False
    if payload.get("unit_id") != unit.unit_id:
        return False
    if payload.get("spec") != dict(unit.spec):
        return False
    return all(payload.get(key) == value
               for key, value in unit.tags.items())


def load_unit_result(path: str | Path) -> dict | None:
    """A structurally valid result document, or None.

    Missing file, unreadable JSON, non-dict payloads, and foreign
    schemas all return None — callers treat that as "not done yet"
    (coordinator polls) or "recompute" (checkpoint loading); semantic
    validation (provenance, config match) stays with the caller.
    """
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict):
        return None
    if payload.get("schema") != RESULT_SCHEMA:
        return None
    if "error" in payload:
        error = payload["error"]
        if not isinstance(error, dict) or "type" not in error:
            return None
        return payload
    if not isinstance(payload.get("stats"), dict):
        return None
    return payload
