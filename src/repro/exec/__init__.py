"""``repro.exec`` — pluggable execution backends for bulk simulation.

The paper's bulk mode prepares a trace off-line and simulates it
across a whole design grid; this package decides *where those
simulations run* without the simulation core knowing or caring.  The
pieces:

* :class:`~repro.exec.unit.WorkUnit` — one serializable run: a
  :meth:`Simulation.from_spec` dict (PR 2) over a shared trace file
  (PR 3, optionally a segment shard) plus a result destination;
* :class:`~repro.exec.backends.ExecutionBackend` — the
  submit/``run_units`` protocol every dispatcher implements;
* :class:`~repro.exec.backends.SerialBackend` /
  :class:`~repro.exec.backends.ProcessPoolBackend` — in-process and
  one-host fan-out (the sweep runner's historical behaviors);
* :class:`~repro.exec.queue.DirectoryQueueBackend` + ``resim worker``
  (:mod:`repro.exec.worker`) — multi-host execution over a shared
  filesystem with crash-tolerant atomic-rename leases;
* :class:`~repro.exec.shard.ShardPlan` /
  :class:`~repro.exec.shard.ShardReducer` (:mod:`repro.exec.shard`) —
  split one design point into segment-range shard units and merge
  their statistics back into one point result;
* :class:`~repro.exec.regions.RegionPlan` /
  :class:`~repro.exec.regions.RegionReducer`
  (:mod:`repro.exec.regions`) — region-sampled execution: simulate
  one warmup-prefixed representative range per behaviour cluster and
  extrapolate the full-trace statistics through the weighted merge.

Backends are named in :data:`~repro.exec.backends.BACKENDS`.  Because
work units are deterministic and results are written atomically,
every backend produces bit-identical result documents for the same
batch — the property the sweep and search layers build on.
"""

from repro.exec.backends import (
    BACKENDS,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
)
from repro.exec.queue import (
    DEFAULT_LEASE_SECONDS,
    DirectoryQueueBackend,
    enqueue,
    queue_paths,
    reclaim_stale,
)
from repro.exec.regions import (
    DEFAULT_REGIONS,
    DEFAULT_WARMUP_SEGMENTS,
    IPC_ERROR_BOUND,
    Region,
    RegionPlan,
    RegionReducer,
    merge_region_documents,
    plan_regions,
    region_units,
)
from repro.exec.shard import (
    EXACT_SUM_COUNTERS,
    ShardPlan,
    ShardReducer,
    merge_result_documents,
    plan_shards,
    shard_units,
)
from repro.exec.unit import (
    ExecError,
    RESULT_SCHEMA,
    UnitExecutionError,
    WorkUnit,
    atomic_write_json,
    error_document,
    execute_unit,
    load_unit_result,
    result_matches_unit,
)
from repro.exec.worker import LeaseHeartbeat, run_worker

__all__ = [
    "BACKENDS",
    "DEFAULT_LEASE_SECONDS",
    "DEFAULT_REGIONS",
    "DEFAULT_WARMUP_SEGMENTS",
    "DirectoryQueueBackend",
    "EXACT_SUM_COUNTERS",
    "ExecError",
    "ExecutionBackend",
    "IPC_ERROR_BOUND",
    "LeaseHeartbeat",
    "ProcessPoolBackend",
    "RESULT_SCHEMA",
    "Region",
    "RegionPlan",
    "RegionReducer",
    "SerialBackend",
    "ShardPlan",
    "ShardReducer",
    "UnitExecutionError",
    "WorkUnit",
    "atomic_write_json",
    "enqueue",
    "error_document",
    "execute_unit",
    "load_unit_result",
    "merge_region_documents",
    "merge_result_documents",
    "plan_regions",
    "plan_shards",
    "queue_paths",
    "reclaim_stale",
    "result_matches_unit",
    "run_worker",
    "shard_units",
]
