"""Region-sampled design-point execution: simulate representatives,
extrapolate the rest.

Sharded execution (:mod:`repro.exec.shard`) still replays **every**
record of a trace, just in parallel; for long traces most segments are
statistically redundant, so ROADMAP's region-sampling direction —
SimPoint's insight, institutionalized by ChampSim's warmup/ROI
regioning and validated with error bounds by the RIKEN Post-K
simulator (PAPERS.md) — estimates a design point from a few
*representative* segment ranges instead:

* **cluster**: deterministic k-means (an explicit
  :class:`~repro.utils.rng.XorShiftRNG` seed, sorted iteration — the
  same determinism contract resim-lint enforces everywhere else)
  groups the per-segment profiles of :mod:`repro.trace.analyze` by
  behaviour (record mix, misprediction density, BBV);
* **sample**: each cluster contributes one representative segment —
  the member nearest its centroid — carrying the cluster's *size* as
  an integer weight, prefixed by warmup segments replayed under the
  engine's existing ``warmup_instructions`` control (simulated to
  warm predictors/caches, excluded from statistics);
* **extrapolate**: the per-region results reduce through the weighted
  :meth:`SimulationStatistics.merge
  <repro.core.stats.SimulationStatistics.merge>` — each region's
  counters scale by its cluster weight, so the merged document
  estimates the full-trace run while executing only the
  representatives.

A :class:`RegionPlan` is the sibling of
:class:`~repro.exec.shard.ShardPlan`: :func:`region_units` turns it
into ordinary segment-range :class:`~repro.exec.unit.WorkUnit`s
runnable on any backend, and :class:`RegionReducer` /
:func:`merge_region_documents` reduce the results.  Unlike shard
merges, a region merge is an **estimate** — the conformance suite
measures its IPC error against full runs and documents the bound
(:data:`IPC_ERROR_BOUND`) — so sampled results must never be mistaken
for exact ones: merged documents carry a top-level ``"sampled"``
summary, region unit specs differ from full-run specs (``segments`` +
``warmup_instructions`` both survive canonicalization, keying the
campaign cache apart), and sweep manifests record the sampling mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.exec.unit import (
    ExecError,
    RESULT_SCHEMA,
    WorkUnit,
    atomic_write_json,
)
from repro.serialize import stats_from_dict, stats_to_dict
from repro.trace.analyze import TraceProfile
from repro.utils.rng import XorShiftRNG

#: Default number of regions (k-means clusters) a sampled run executes.
DEFAULT_REGIONS = 8

#: Default warmup prefix, in segments, replayed before each
#: representative to warm predictors and caches.
DEFAULT_WARMUP_SEGMENTS = 1

#: Documented relative IPC error bound of a region-sampled run against
#: the full replay, for the default parameters on the synthetic
#: workloads (the conformance suite and the CI smoke job assert it).
#: Sampling error is workload-dependent; callers needing exactness use
#: sharded execution instead.
IPC_ERROR_BOUND = 0.15

#: k-means iteration cap; assignments converge far earlier in practice.
_KMEANS_ITERATIONS = 25


@dataclass(frozen=True)
class Region:
    """One representative segment range plus the weight it stands for.

    ``[lo, hi)`` is the measured range (statistics counted);
    ``[warm_lo, lo)`` is the warmup prefix (replayed, not counted);
    ``weight`` is the number of trace segments this representative
    extrapolates — the integer the weighted merge scales by.
    """

    index: int
    lo: int
    hi: int
    warm_lo: int
    warmup_instructions: int
    weight: int
    records: int            # records executed: warmup + measured
    measured_records: int   # records in [lo, hi) only

    def __post_init__(self) -> None:
        if not 0 <= self.warm_lo <= self.lo < self.hi:
            raise ExecError(
                f"region needs 0 <= warm_lo <= lo < hi, got "
                f"({self.warm_lo}, {self.lo}, {self.hi})")
        if self.weight < 1:
            raise ExecError(
                f"region weight must be >= 1 (it counts the segments "
                f"the representative stands for), got {self.weight}")
        if self.warmup_instructions < 0:
            raise ExecError("region warmup_instructions must be >= 0")


@dataclass(frozen=True)
class RegionPlan:
    """How one trace samples down to representative regions.

    Produced by :func:`plan_regions`; may hold fewer regions than
    requested (a trace with fewer segments than clusters cannot split
    further).  ``total_segments``/``total_records`` describe the full
    trace, so coverage — the fraction of records a sampled run
    actually executes — is a property of the plan.
    """

    trace_path: str
    trace_digest: str
    seed: int
    total_segments: int
    total_records: int
    regions: tuple[Region, ...]

    def __post_init__(self) -> None:
        if not self.regions:
            raise ExecError("malformed region plan: no regions")
        previous_hi = 0
        for position, region in enumerate(self.regions):
            if region.index != position:
                raise ExecError(
                    f"region {position} carries index {region.index}")
            if region.lo < previous_hi:
                raise ExecError(
                    "region measured ranges must be disjoint and "
                    "ascending")
            previous_hi = region.hi
            if region.hi > self.total_segments:
                raise ExecError(
                    f"region {position} ends at segment {region.hi}, "
                    f"table holds {self.total_segments}")
        if sum(region.weight for region in self.regions) \
                != self.total_segments:
            raise ExecError(
                "region weights must sum to the trace's segment count "
                "(every segment extrapolates from exactly one "
                "representative)")

    @property
    def count(self) -> int:
        return len(self.regions)

    @property
    def executed_records(self) -> int:
        """Records a sampled run replays (warmup included)."""
        return sum(region.records for region in self.regions)

    @property
    def coverage(self) -> float:
        """Executed fraction of the trace's records."""
        if not self.total_records:
            return 0.0
        return self.executed_records / self.total_records

    def describe(self) -> str:
        spans = ", ".join(
            f"{region.lo}..{region.hi - 1} (w={region.weight})"
            for region in self.regions)
        return (f"RegionPlan({self.count} region(s) of "
                f"{self.total_segments} segment(s), "
                f"{100.0 * self.coverage:.1f}% of records: {spans})")

    __repr__ = describe


def _sqdist(a: tuple[float, ...], b: tuple[float, ...]) -> float:
    return sum((x - y) * (x - y) for x, y in zip(a, b, strict=True))


def _centroid(vectors: list[tuple[float, ...]],
              members: list[int]) -> tuple[float, ...]:
    count = len(members)
    dims = len(vectors[0])
    return tuple(
        sum(vectors[member][axis] for member in members) / count
        for axis in range(dims))


def _kmeans(vectors: list[tuple[float, ...]], clusters: int,
            rng: XorShiftRNG) -> list[int]:
    """Deterministic k-means over the segment feature vectors.

    k-means++ style seeding driven by the caller's
    :class:`XorShiftRNG`, then plain Lloyd iterations with
    index-ordered tie-breaking — every step iterates lists in index
    order, so a fixed seed yields one assignment on every platform.
    Returns the cluster index of each vector.
    """
    count = len(vectors)
    clusters = min(clusters, count)
    centers: list[tuple[float, ...]] = [
        vectors[rng.randint(0, count - 1)]]
    nearest = [_sqdist(vector, centers[0]) for vector in vectors]
    while len(centers) < clusters:
        total = sum(nearest)
        if total <= 0.0:
            # Remaining vectors coincide with a center; spread the
            # leftover centers over distinct indices deterministically.
            taken = {tuple(center) for center in centers}
            extras = [index for index in range(count)
                      if tuple(vectors[index]) not in taken]
            for index in extras[:clusters - len(centers)]:
                centers.append(vectors[index])
            break
        draw = rng.random() * total
        acc = 0.0
        pick = count - 1
        for index in range(count):
            acc += nearest[index]
            if draw < acc:
                pick = index
                break
        centers.append(vectors[pick])
        nearest = [min(old, _sqdist(vectors[index], centers[-1]))
                   for index, old in enumerate(nearest)]
    assignment = [0] * count
    for _ in range(_KMEANS_ITERATIONS):
        changed = False
        for index in range(count):
            best = min(
                range(len(centers)),
                key=lambda c: (_sqdist(vectors[index], centers[c]), c))
            if assignment[index] != best:
                assignment[index] = best
                changed = True
        for cluster in range(len(centers)):
            members = [index for index in range(count)
                       if assignment[index] == cluster]
            if members:
                centers[cluster] = _centroid(vectors, members)
        if not changed:
            break
    return assignment


def plan_regions(
    trace_path: str | Path,
    profile: TraceProfile,
    *,
    regions: int = DEFAULT_REGIONS,
    seed: int = 0,
    warmup_segments: int = DEFAULT_WARMUP_SEGMENTS,
) -> RegionPlan:
    """Cluster a trace's segment profiles and pick one weighted
    representative range per cluster (see module docstring).

    The plan is a pure function of ``(profile, regions, seed,
    warmup_segments)`` — same inputs, same plan, on any host.  Fewer
    regions than requested are returned when the trace has fewer
    segments.
    """
    if regions < 1:
        raise ExecError(f"regions must be >= 1, got {regions}")
    if warmup_segments < 0:
        raise ExecError(
            f"warmup_segments must be >= 0, got {warmup_segments}")
    segments = profile.segments
    if not segments:
        raise ExecError(f"trace {trace_path} profiles zero segments")
    vectors = [segment.features() for segment in segments]
    assignment = _kmeans(vectors, regions, XorShiftRNG(seed))
    clusters = sorted(set(assignment))
    chosen: list[tuple[int, int]] = []  # (representative, weight)
    for cluster in clusters:
        members = [index for index in range(len(segments))
                   if assignment[index] == cluster]
        centroid = _centroid(vectors, members)
        representative = min(
            members, key=lambda m: (_sqdist(vectors[m], centroid), m))
        chosen.append((representative, len(members)))
    chosen.sort()
    built: list[Region] = []
    previous_hi = 0
    for position, (representative, weight) in enumerate(chosen):
        # The warmup prefix may not reach into the previous region's
        # measured range — ranges stay disjoint so every executed
        # record belongs to exactly one unit.
        warm_lo = max(previous_hi, representative - warmup_segments)
        warmup = sum(segments[index].committed
                     for index in range(warm_lo, representative))
        executed = sum(segments[index].records
                       for index in range(warm_lo, representative + 1))
        built.append(Region(
            index=position,
            lo=representative,
            hi=representative + 1,
            warm_lo=warm_lo,
            warmup_instructions=warmup,
            weight=weight,
            records=executed,
            measured_records=segments[representative].records,
        ))
        previous_hi = representative + 1
    return RegionPlan(
        trace_path=str(trace_path),
        trace_digest=profile.digest,
        seed=seed,
        total_segments=len(segments),
        total_records=profile.total_records,
        regions=tuple(built),
    )


def region_unit_id(unit_id: str, index: int, regions: int) -> str:
    """Stable id of one region of a unit.  The region count is part of
    the id, so re-planning with different parameters cannot revive a
    previous plan's per-region results."""
    return f"{unit_id}.r{index}of{regions}"


def region_units(base: WorkUnit, plan: RegionPlan) -> tuple[WorkUnit, ...]:
    """Split one monolithic work unit into one unit per plan region.

    Each region unit keeps the base spec plus its ``segments`` range
    (warmup prefix included) and ``warmup_instructions`` (the prefix's
    committed count, so the engine replays it warm but uncounted); a
    ``region`` tag records slice and weight — the identity
    :class:`RegionReducer` and resume checks match on.  Because
    ``segments`` and ``warmup_instructions`` both survive
    :meth:`Simulation.canonical_spec`, region units can never share a
    campaign-cache entry with a full-trace run.
    """
    for key in ("segments", "warmup_instructions"):
        if key in base.spec:
            raise ExecError(
                f"unit {base.unit_id!r} already carries {key!r}; "
                f"region-sample the unrestricted unit instead")
    units = []
    base_path = Path(base.result_path)
    for region in plan.regions:
        spec = dict(base.spec)
        spec["segments"] = [region.warm_lo, region.hi]
        if region.warmup_instructions:
            spec["warmup_instructions"] = region.warmup_instructions
        tags = dict(base.tags)
        tags["region"] = {"index": region.index, "of": plan.count,
                          "unit": base.unit_id,
                          "weight": region.weight}
        uid = region_unit_id(base.unit_id, region.index, plan.count)
        result_path = base_path.with_name(
            f"{base_path.stem}.r{region.index}of{plan.count}"
            f"{base_path.suffix}")
        units.append(WorkUnit(unit_id=uid, spec=spec,
                              result_path=str(result_path), tags=tags))
    return tuple(units)


def _region_identity(payload: dict) -> dict | None:
    """Everything but the region's slice: two region results merge
    only when they simulated the same trace under the same
    parameters.  ``None`` (no spec recorded) cannot prove a
    mismatch."""
    spec = payload.get("spec")
    if not isinstance(spec, dict):
        return None
    return {key: value for key, value in spec.items()
            if key not in ("segments", "warmup_instructions")}


def merge_region_documents(
    payloads: list[dict],
    *,
    unit_id: str | None = None,
    spec: dict | None = None,
    tags: dict | None = None,
) -> dict:
    """Reduce per-region result documents into one *estimated* point
    document via the weighted merge.

    Validation mirrors :func:`repro.exec.shard.merge_result_documents`
    (same schema, no errors, one configuration, one run identity);
    each payload must additionally carry a ``region`` tag with an
    integer ``weight``.  The merged document's statistics scale each
    region by its weight, its provenance records every region's slice
    and weight, and a top-level ``sampled`` summary marks it as an
    estimate — never confusable with an exact sharded merge.
    """
    if not payloads:
        raise ExecError("nothing to merge: no region documents")
    weights: list[int] = []
    for payload in payloads:
        if not isinstance(payload, dict) \
                or payload.get("schema") != RESULT_SCHEMA:
            raise ExecError(
                f"cannot merge: not a schema-{RESULT_SCHEMA} result "
                f"document")
        if "error" in payload:
            error = payload.get("error") or {}
            raise ExecError(
                f"cannot merge failed region "
                f"{payload.get('unit_id')!r}: {error.get('type')}: "
                f"{error.get('message')}")
        if not isinstance(payload.get("stats"), dict):
            raise ExecError(
                f"cannot merge: document "
                f"{payload.get('unit_id')!r} has no statistics")
        region_tag = payload.get("region")
        if not isinstance(region_tag, dict) or \
                isinstance(region_tag.get("weight"), bool) or \
                not isinstance(region_tag.get("weight"), int):
            raise ExecError(
                f"document {payload.get('unit_id')!r} carries no "
                f"integer region weight; was it produced by "
                f"region_units()?")
        weights.append(region_tag["weight"])
    config = payloads[0].get("config")
    for payload in payloads[1:]:
        if payload.get("config") != config:
            raise ExecError(
                "cannot merge results of different design points: "
                f"{payloads[0].get('unit_id')!r} and "
                f"{payload.get('unit_id')!r} disagree on the "
                f"processor configuration")
    identities = [(payload, _region_identity(payload))
                  for payload in payloads]
    known = [(payload, identity) for payload, identity in identities
             if identity is not None]
    for payload, identity in known[1:]:
        if identity != known[0][1]:
            raise ExecError(
                "cannot merge results of different runs: "
                f"{known[0][0].get('unit_id')!r} and "
                f"{payload.get('unit_id')!r} disagree on the run "
                f"spec (trace, budget, seed, or config)")
    parts = [stats_from_dict(payload["stats"]) for payload in payloads]
    provenance: list[dict] = []
    for position, (payload, stats) in enumerate(
            zip(payloads, parts, strict=True)):
        region_tag = payload["region"]
        entry: dict = {
            "index": region_tag.get("index", position),
            "weight": weights[position],
            "records": int(stats.trace_records_consumed),
            "cycles": int(stats.major_cycles),
            "instructions": int(stats.committed_instructions),
        }
        document_spec = payload.get("spec") or {}
        segments = document_spec.get("segments")
        if segments is not None:
            entry["segments"] = [int(segments[0]), int(segments[1])]
        warmup = document_spec.get("warmup_instructions")
        if warmup is not None:
            entry["warmup"] = int(warmup)
        provenance.append(entry)
    merged = parts[0].merge(parts[1:], weights=weights,
                            shards=provenance)
    document = {
        "schema": RESULT_SCHEMA,
        "unit_id": (unit_id if unit_id is not None
                    else payloads[0].get("unit_id")),
        "config": config,
        "stats": stats_to_dict(merged),
        "sampled": {"regions": len(payloads),
                    "segments": sum(weights)},
        **(tags or {}),
    }
    if spec is not None:
        document["spec"] = dict(spec)
    elif known:
        document["spec"] = known[0][1]
    return document


class RegionReducer:
    """Collects one design point's per-region results; emits the
    weighted estimate.

    The sibling of :class:`~repro.exec.shard.ShardReducer`:
    construction takes the monolithic unit and the plan that sampled
    it; feed region result documents to :meth:`add` in any order; once
    :attr:`complete`, :meth:`write` atomically persists the merged
    estimate to the monolithic unit's ``result_path``, making it the
    design point's checkpoint.
    """

    def __init__(self, unit: WorkUnit, plan: RegionPlan) -> None:
        self._unit = unit
        self._plan = plan
        self._parts: dict[int, dict] = {}

    @property
    def unit(self) -> WorkUnit:
        return self._unit

    @property
    def plan(self) -> RegionPlan:
        return self._plan

    @property
    def expected(self) -> int:
        return self._plan.count

    @property
    def collected(self) -> int:
        return len(self._parts)

    @property
    def complete(self) -> bool:
        return len(self._parts) == self._plan.count

    def add(self, payload: dict) -> None:
        """Accept one region's result document."""
        region_tag = payload.get("region") \
            if isinstance(payload, dict) else None
        if not isinstance(region_tag, dict) \
                or not isinstance(region_tag.get("index"), int):
            raise ExecError(
                f"result document for {self._unit.unit_id!r} carries "
                f"no region tag; was it produced by region_units()?")
        index = region_tag["index"]
        if region_tag.get("unit") != self._unit.unit_id \
                or region_tag.get("of") != self._plan.count \
                or not 0 <= index < self._plan.count:
            raise ExecError(
                f"region tag {region_tag} does not belong to the "
                f"{self._plan.count}-region plan of "
                f"{self._unit.unit_id!r}")
        expected_weight = self._plan.regions[index].weight
        if region_tag.get("weight") != expected_weight:
            raise ExecError(
                f"region {index} of {self._unit.unit_id!r} carries "
                f"weight {region_tag.get('weight')!r}, plan says "
                f"{expected_weight}")
        if index in self._parts:
            raise ExecError(
                f"duplicate result for region {index} of "
                f"{self._unit.unit_id!r}")
        self._parts[index] = payload

    def merged(self) -> dict:
        """The merged estimate document (requires :attr:`complete`)."""
        if not self.complete:
            missing = sorted(set(range(self._plan.count))
                             - set(self._parts))
            raise ExecError(
                f"cannot merge {self._unit.unit_id!r}: region(s) "
                f"{missing} not collected yet")
        ordered = [self._parts[index]
                   for index in range(self._plan.count)]
        return merge_region_documents(
            ordered,
            unit_id=self._unit.unit_id,
            spec=dict(self._unit.spec),
            tags=dict(self._unit.tags),
        )

    def write(self) -> dict:
        """Merge and atomically persist to the monolithic unit's
        result path; returns the merged document."""
        document = self.merged()
        atomic_write_json(self._unit.result_path, document)
        return document

    def describe(self) -> str:
        return (f"RegionReducer({self._unit.unit_id!r}, "
                f"{self.collected}/{self.expected} region(s))")

    __repr__ = describe
