"""The queue worker: ``resim worker DIR`` / ``python -m repro.exec DIR``.

A worker is the executing half of the directory queue
(:mod:`repro.exec.queue`): it loops *claim → simulate → write result →
complete*, entirely through atomic renames, so any number of workers
on any number of hosts sharing the queue directory cooperate without
a coordinator process, a lock server, or any network protocol beyond
the filesystem.

Crash tolerance from the executing side:

* before simulating, the worker checks whether a valid result already
  exists (a predecessor may have died between its result write and
  its lease rename) and completes the unit for free if so;
* while simulating, a :class:`LeaseHeartbeat` engine observer
  refreshes the lease mtime (the PR 2 observer API doing operations
  work: zero hot-loop cost when detached, one comparison per major
  cycle when attached), so only a *dead* worker's lease ever goes
  stale and gets reclaimed;
* a unit that raises gets an **error document** written to its result
  path — the coordinator learns what failed instead of waiting — and
  is still marked done (re-enqueueing a deterministic failure would
  loop forever; the sweep layer's checkpoint validation discards
  error documents on resume, so a later rerun recomputes it).

Exit policy: by default a worker polls forever (fleet style — start
it once per host, point it at the mount, Ctrl-C when the campaign is
over).  ``--exit-when-drained`` exits once pending *and* leases are
empty (what coordinator-spawned workers use); ``--idle-exit N`` exits
after N seconds without finding work; ``--max-units N`` bounds the
total processed.
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import time
from pathlib import Path
from typing import TextIO

from repro.core.engine import EngineObserver, ReSimEngine
from repro.exec.queue import (
    DEFAULT_LEASE_SECONDS,
    QueuePaths,
    claim_next,
    complete_lease,
    queue_paths,
    read_unit,
    reclaim_stale,
    touch_lease,
)
from repro.exec.unit import (
    ExecError,
    atomic_write_json,
    error_document,
    execute_unit,
    load_unit_result,
    result_matches_unit,
)


def worker_id() -> str:
    """Stable identity of this worker process, for log lines."""
    return f"{socket.gethostname()}:{os.getpid()}"


class LeaseHeartbeat(EngineObserver):
    """Engine observer that keeps a lease fresh during long runs.

    Overrides only :meth:`on_cycle`, so the zero-observer hot loop is
    untouched; attached cost is one time check per ``every_cycles``
    major cycles.
    """

    def __init__(self, lease_path: Path, *,
                 interval_seconds: float,
                 every_cycles: int = 4096) -> None:
        self._lease_path = lease_path
        self._interval = interval_seconds
        self._every = max(1, every_cycles)
        self._countdown = self._every
        self._last_beat = time.monotonic()

    def on_cycle(self, engine: ReSimEngine) -> None:
        self._countdown -= 1
        if self._countdown > 0:
            return
        self._countdown = self._every
        now = time.monotonic()
        if now - self._last_beat < self._interval:
            return
        self._last_beat = now
        touch_lease(self._lease_path)


def process_one(paths: QueuePaths, lease_path: Path, *,
                lease_seconds: float,
                log: TextIO | None = None) -> bool:
    """Resolve one claimed unit; True if it was genuinely resolved
    (simulated, failed-with-error-document, or completed from an
    existing result *of this exact unit*), False if it had to be
    abandoned (unreadable descriptor; the coordinator re-enqueues
    from its in-memory copy).

    Never raises for unit-level problems: failures become error
    documents (see module docstring), and the lease is completed in
    every path.
    """
    try:
        unit = read_unit(lease_path)
    except ExecError as error:
        if log:
            print(f"[worker {worker_id()}] abandoning unreadable "
                  f"unit {lease_path.name}: {error}", file=log)
        complete_lease(paths, lease_path)
        return False

    def fresh_result() -> dict | None:
        """A success document this exact unit already produced (a
        predecessor that died before marking done, or a racing
        duplicate executor) — stale or foreign files don't count."""
        payload = load_unit_result(unit.result_path)
        if payload is not None and "error" not in payload \
                and result_matches_unit(payload, unit):
            return payload
        return None

    if fresh_result() is not None:
        # Honor the predecessor's (deterministic, hence identical)
        # result instead of re-simulating.
        complete_lease(paths, lease_path)
        return True
    heartbeat = LeaseHeartbeat(
        lease_path, interval_seconds=max(lease_seconds / 4.0, 0.05))
    try:
        execute_unit(unit, observers=(heartbeat,))
        if log:
            print(f"[worker {worker_id()}] completed {unit.unit_id}",
                  file=log)
    except Exception as error:  # noqa: BLE001 - becomes an error doc
        if fresh_result() is None and lease_path.exists():
            # Report the failure only while we still own the claim —
            # lease paths are claimant-unique, so existence *is*
            # ownership.  A missing lease means we stalled past the
            # horizon and were reclaimed: the unit is pending again
            # or re-running elsewhere, and our verdict must not
            # clobber that retry's.  (The coordinator additionally
            # defers error documents while any live lease exists.)
            # And never clobber a valid result a racing executor
            # already wrote.
            atomic_write_json(unit.result_path,
                              error_document(unit, error))
        if log:
            print(f"[worker {worker_id()}] unit {unit.unit_id} "
                  f"failed: {type(error).__name__}: {error}", file=log)
    complete_lease(paths, lease_path)
    return True


def run_worker(
    queue_dir: str | Path,
    *,
    poll_seconds: float = 0.2,
    lease_seconds: float = DEFAULT_LEASE_SECONDS,
    max_units: int | None = None,
    idle_exit: float | None = None,
    exit_when_drained: bool = False,
    log: TextIO | None = None,
) -> int:
    """Drain a queue directory; returns units resolved (executed,
    failed-with-error-document, or completed from an existing
    result).  Abandoned unreadable descriptors are not counted.  See
    module docstring for the exit policy knobs."""
    paths = queue_paths(queue_dir)
    processed = 0
    idle_since = time.monotonic()
    while True:
        if max_units is not None and processed >= max_units:
            return processed
        lease = claim_next(paths)
        if lease is not None:
            if process_one(paths, lease, lease_seconds=lease_seconds,
                           log=log):
                processed += 1
            idle_since = time.monotonic()
            continue
        # Nothing pending: recover orphans (that may repopulate
        # pending/), then decide whether to keep waiting.
        if reclaim_stale(paths, lease_seconds):
            continue
        drained = not any(paths.pending.glob("*.json")) and \
            not any(paths.leases.glob("*.json"))
        if exit_when_drained and drained:
            return processed
        if idle_exit is not None and \
                time.monotonic() - idle_since >= idle_exit:
            return processed
        time.sleep(poll_seconds)


def add_worker_arguments(parser: argparse.ArgumentParser) -> None:
    """The worker option surface, defined once — both entry points
    (``resim worker`` and ``python -m repro.exec``) build on it, so
    they cannot drift apart."""
    parser.add_argument("queue_dir", help="queue root directory "
                        "(shared by coordinator and all workers)")
    parser.add_argument("--poll-seconds", type=float, default=0.2,
                        help="sleep between empty-queue scans")
    parser.add_argument("--lease-seconds", type=float,
                        default=DEFAULT_LEASE_SECONDS,
                        help="silence after which another worker may "
                             "reclaim a claimed unit")
    parser.add_argument("--max-units", type=int, default=None,
                        help="exit after processing this many units")
    parser.add_argument("--idle-exit", type=float, default=None,
                        help="exit after this many seconds without "
                             "finding work")
    parser.add_argument("--exit-when-drained", action="store_true",
                        help="exit once pending and leased units are "
                             "both empty (scripted/CI use)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-unit log lines")


def run_from_args(args: argparse.Namespace) -> int:
    """Validate parsed worker options and run the loop (the shared
    implementation behind both entry points)."""
    if args.poll_seconds <= 0:
        raise SystemExit(f"--poll-seconds must be positive, "
                         f"got {args.poll_seconds}")
    if args.lease_seconds <= 0:
        raise SystemExit(f"--lease-seconds must be positive, "
                         f"got {args.lease_seconds}")
    log = None if args.quiet else sys.stderr
    processed = run_worker(
        args.queue_dir,
        poll_seconds=args.poll_seconds,
        lease_seconds=args.lease_seconds,
        max_units=args.max_units,
        idle_exit=args.idle_exit,
        exit_when_drained=args.exit_when_drained,
        log=log,
    )
    print(f"processed {processed} unit(s)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="resim worker",
        description="Process work units from a shared-filesystem "
                    "queue (see repro.exec.queue).",
    )
    add_worker_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
