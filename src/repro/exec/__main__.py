"""``python -m repro.exec`` runs a queue worker (see
:mod:`repro.exec.worker`); the separate entry module keeps runpy from
re-executing a module the package already imported."""

from repro.exec.worker import main

if __name__ == "__main__":
    raise SystemExit(main())
