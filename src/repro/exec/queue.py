"""Shared-filesystem work queue: multi-host execution without a server.

The paper's bulk mode — one trace prepared off-line, simulated across
a whole design grid — outgrows a single host long before it outgrows
a single *filesystem*: a shared mount (NFS, Lustre, even a plain
directory for same-host processes) is the only infrastructure most
labs actually have.  This module implements a crash-tolerant work
queue on nothing but atomic ``rename(2)``:

::

    <queue_dir>/
        pending/<unit_id>.json          units awaiting a worker
        leases/<unit_id>.<nonce>.json   units some worker has claimed
        done/<unit_id>.json             units whose result was written

* **enqueue** — the coordinator atomically writes a
  :class:`~repro.exec.unit.WorkUnit` document into ``pending/``;
* **claim** — a worker renames ``pending/X.json`` to a
  claimant-unique ``leases/X.<nonce>.json``; rename is atomic on one
  filesystem, so exactly one claimant wins, with no locks and no
  server — and because the nonce is unique, holding a lease *path*
  proves ownership of the claim (a reclaimed worker's path stops
  existing; it cannot disturb its successor's lease);
* **complete** — the worker writes the unit's result file (atomic,
  at ``result_path``), then renames its lease into ``done/``;
* **crash** — a worker killed mid-unit leaves its lease behind.  A
  lease untouched for ``lease_seconds`` is *stale*; any worker or
  coordinator may reclaim it (rename back into ``pending/``), after
  which the unit runs again.  Long simulations stay claimed because
  the executing worker heartbeats its lease mtime from an engine
  observer (:class:`~repro.exec.worker.LeaseHeartbeat`).

Re-execution after a reclaim is safe because units are deterministic
and results are written atomically: the rerun produces byte-identical
output, so no design point is ever duplicated or lost — at worst some
CPU time is.  Workers also check for an existing valid result before
simulating, so a unit whose worker died *after* the result write but
*before* the lease rename costs one file read, not a re-simulation.

:class:`DirectoryQueueBackend` is the coordinator side: it enqueues a
batch, optionally spawns local ``resim worker`` processes, and polls
for result files.  Any number of additional workers on any number of
hosts (sharing the mount) drain the same queue concurrently.
"""

from __future__ import annotations

import contextlib
import json
import os
import subprocess
import sys
import time
from collections.abc import Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.exec.backends import BACKENDS, ExecutionBackend, OnResult
from repro.exec.unit import (
    ExecError,
    UnitExecutionError,
    WorkUnit,
    atomic_write_json,
    load_unit_result,
    result_matches_unit,
)

#: Default seconds of lease silence after which a claimed unit is
#: presumed orphaned and becomes reclaimable.  Workers heartbeat well
#: inside this (every lease_seconds / 4), so only a dead worker's
#: lease ever goes stale.
DEFAULT_LEASE_SECONDS = 60.0


@dataclass(frozen=True)
class QueuePaths:
    """The three state directories of one queue."""

    root: Path
    pending: Path
    leases: Path
    done: Path


def queue_paths(queue_dir: str | Path, *, create: bool = True
                ) -> QueuePaths:
    """Resolve (and by default create) a queue's directory layout."""
    root = Path(queue_dir)
    paths = QueuePaths(root=root, pending=root / "pending",
                       leases=root / "leases", done=root / "done")
    if create:
        for directory in (paths.pending, paths.leases, paths.done):
            directory.mkdir(parents=True, exist_ok=True)
    return paths


def lease_unit_id(lease_path: Path) -> str:
    """The unit id a lease file names.

    Leases are claimant-unique — ``leases/<unit_id>.<nonce>.json`` —
    so a worker holding a lease path *owns* that claim: after a stale
    reclaim, the next claimant's lease is a different file, and the
    stalled worker's path simply stops existing.  The nonce never
    contains dots, so stripping the last dotted component recovers
    the unit id even when the id itself has dots.
    """
    return lease_path.name[:-len(".json")].rsplit(".", 1)[0]


def _claim_nonce() -> str:
    """Per-claim unique lease suffix (dot-free; see lease_unit_id)."""
    import uuid
    return f"{os.getpid():x}-{uuid.uuid4().hex[:8]}"


def _leases_for(paths: QueuePaths, unit_id: str) -> Iterator[Path]:
    return paths.leases.glob(f"{unit_id}.*.json")


def enqueue(paths: QueuePaths, unit: WorkUnit) -> bool:
    """Publish one unit into ``pending/``; False if it is already
    anywhere in the queue (pending, leased, or done) — re-running a
    coordinator over a half-finished queue must not double-enqueue."""
    name = f"{unit.unit_id}.json"
    if (paths.pending / name).exists() or (paths.done / name).exists():
        return False
    if any(_leases_for(paths, unit.unit_id)):
        return False
    atomic_write_json(paths.pending / name, unit.to_dict())
    return True


def claim_next(paths: QueuePaths) -> Path | None:
    """Atomically claim one pending unit; the winning claimant gets
    its own (claimant-unique) lease path, losers (and an empty
    queue) get None."""
    for entry in sorted(paths.pending.glob("*.json")):
        unit_id = entry.name[:-len(".json")]
        target = paths.leases / f"{unit_id}.{_claim_nonce()}.json"
        try:
            os.rename(entry, target)
        except OSError:
            continue  # another claimant won this unit
        # The rename preserved the *enqueue* mtime; stamp claim time
        # or the lease would look stale the moment it is taken.
        touch_lease(target)
        return target
    return None


def touch_lease(lease_path: Path) -> None:
    """Refresh a lease's heartbeat (mtime = now)."""
    # Lease may be completed/reclaimed under us; that is harmless.
    with contextlib.suppress(OSError):
        os.utime(lease_path)


def read_unit(path: Path) -> WorkUnit:
    """Decode one queue descriptor file back into a WorkUnit."""
    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise ExecError(f"unreadable queue entry {path}: {error}") \
            from error
    return WorkUnit.from_dict(document)


def complete_lease(paths: QueuePaths, lease_path: Path) -> None:
    """Move a finished unit's lease into ``done/`` (idempotent: a
    racing duplicate completion simply overwrites the done marker;
    a reclaimed claimant's completion is a no-op because its lease
    path no longer exists)."""
    # Someone else may have completed/reclaimed it; the result exists.
    with contextlib.suppress(OSError):
        os.replace(lease_path,
                   paths.done / f"{lease_unit_id(lease_path)}.json")


def reclaim_stale(paths: QueuePaths,
                  lease_seconds: float = DEFAULT_LEASE_SECONDS) -> int:
    """Recover units orphaned by dead workers.

    A lease whose unit already has a valid result is completed in
    place (its worker died between the result write and the rename);
    a lease silent for ``lease_seconds`` goes back to ``pending/``.
    Returns the number of units made runnable again.  Safe to call
    from any worker or coordinator, concurrently: every transition is
    a rename, so racing reclaimers elect one winner.
    """
    now = time.time()
    reclaimed = 0
    for lease in sorted(paths.leases.glob("*.json")):
        try:
            unit = read_unit(lease)
        except ExecError:
            unit = None
        if unit is not None and result_matches_unit(
                load_unit_result(unit.result_path), unit):
            complete_lease(paths, lease)
            continue
        try:
            age = now - lease.stat().st_mtime
        except OSError:
            continue  # completed/reclaimed under us
        if age < lease_seconds:
            continue
        try:
            os.rename(lease,
                      paths.pending / f"{lease_unit_id(lease)}.json")
            reclaimed += 1
        except OSError:
            continue
    return reclaimed


@BACKENDS.register("queue", aliases=("directory-queue", "dirqueue"))
class DirectoryQueueBackend(ExecutionBackend):
    """Coordinator over a shared-filesystem queue (module docstring).

    Parameters
    ----------
    queue_dir:
        The queue root.  Every participating host must see it at the
        same path (unit documents carry absolute paths).
    workers:
        Local ``resim worker`` processes to spawn per drain; ``0``
        relies entirely on externally started workers (other
        terminals, other hosts).
    lease_seconds:
        Staleness horizon for crash recovery (see module docstring).
    poll_seconds:
        Coordinator polling cadence for result files.
    timeout:
        Raise :class:`ExecError` if no unit completes for this many
        seconds (None = wait forever; the right default when remote
        workers may come and go).
    """

    name = "queue"

    def __init__(
        self,
        queue_dir: str | Path,
        *,
        workers: int = 0,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        poll_seconds: float = 0.1,
        timeout: float | None = None,
    ) -> None:
        super().__init__()
        if workers < 0:
            raise ExecError(f"workers must be >= 0, got {workers}")
        if lease_seconds <= 0:
            raise ExecError(
                f"lease_seconds must be positive, got {lease_seconds}")
        if poll_seconds <= 0:
            raise ExecError(
                f"poll_seconds must be positive, got {poll_seconds}")
        if timeout is not None and timeout <= 0:
            raise ExecError(
                f"timeout must be positive (or None to wait "
                f"forever), got {timeout}")
        self.queue_dir = Path(queue_dir).resolve()
        self.workers = workers
        self.lease_seconds = lease_seconds
        self.poll_seconds = poll_seconds
        self.timeout = timeout
        self._respawns_left = 0
        self._procs: list[subprocess.Popen] = []
        self._atexit_registered = False
        #: How long a coordinator-spawned worker keeps polling an
        #: empty queue before retiring.  Long enough that the small
        #: back-to-back batches of an adaptive search reuse the same
        #: worker processes (no interpreter restart per round), short
        #: enough that idle workers don't linger after a campaign.
        self.worker_idle_exit = 10.0

    # -- local worker processes ---------------------------------------

    def _spawn_worker(self) -> subprocess.Popen:
        command = [
            sys.executable, "-m", "repro.exec",
            str(self.queue_dir),
            "--idle-exit", str(self.worker_idle_exit), "--quiet",
            "--lease-seconds", str(self.lease_seconds),
            "--poll-seconds", str(self.poll_seconds),
        ]
        # stdout swallowed (the exit summary must not interleave with
        # the coordinator's table output); stderr inherited so real
        # worker errors stay visible.
        return subprocess.Popen(command, stdout=subprocess.DEVNULL)

    def _ensure_worker_pool(self) -> None:
        """Top the persistent local pool back up to ``workers``.

        Workers are spawned with ``--idle-exit`` rather than
        ``--exit-when-drained`` so consecutive drains (an adaptive
        search's many small rounds) reuse live processes instead of
        paying interpreter startup per round; retired/dead ones are
        pruned and replaced here.
        """
        self._procs = [proc for proc in self._procs
                       if proc.poll() is None]
        while len(self._procs) < self.workers:
            self._procs.append(self._spawn_worker())
        if not self._atexit_registered:
            import atexit
            atexit.register(self.close)
            self._atexit_registered = True

    def close(self) -> None:
        """Terminate any locally spawned workers still running.

        Called automatically at interpreter exit (and on drain
        errors); idle workers also retire on their own after
        ``worker_idle_exit`` seconds, so calling this is optional.
        """
        procs, self._procs = self._procs, []
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()
                proc.wait()

    # -- drain ---------------------------------------------------------

    def _execute(self, batch: Sequence[WorkUnit],
                 on_result: OnResult | None) -> dict[str, dict]:
        paths = queue_paths(self.queue_dir)
        results: dict[str, dict] = {}
        failures: list[tuple[WorkUnit, dict]] = []
        outstanding: dict[str, WorkUnit] = {}

        def collect(unit: WorkUnit, payload: dict) -> None:
            if "error" in payload:
                failures.append((unit, payload))
            else:
                results[unit.unit_id] = payload
            if on_result is not None:
                on_result(unit, payload)

        for unit in batch:
            payload = load_unit_result(unit.result_path)
            if payload is not None and "error" not in payload \
                    and result_matches_unit(payload, unit):
                # Already satisfied *by this exact unit* (a previous
                # drain, another coordinator, an eager worker):
                # deterministic units make reuse always correct.
                collect(unit, payload)
                continue
            if payload is not None:
                # The file holds either a stale error document (its
                # failure was reported then; re-submitting the unit
                # means the caller wants a retry — transient causes
                # like a missing mount get fixed between runs) or a
                # result from a *different* unit that happened to use
                # this path (e.g. a results directory reused after
                # its manifest was deleted).  Either way: clear the
                # document and its done marker and execute afresh —
                # reviving it would break the bit-identical contract.
                Path(unit.result_path).unlink(missing_ok=True)
                done_marker = paths.done / f"{unit.unit_id}.json"
                done_marker.unlink(missing_ok=True)
            enqueue(paths, unit)
            outstanding[unit.unit_id] = unit

        if outstanding and self.workers:
            # Spawn budget guard (reset per drain): a unit that
            # hard-crashes its worker (e.g. OOM kill) must not
            # respawn processes forever.
            self._respawns_left = 3 * self.workers
            self._ensure_worker_pool()
        try:
            self._poll(paths, outstanding, collect)
            if failures:
                unit, payload = failures[0]
                error = payload["error"]
                raise UnitExecutionError(
                    unit.unit_id, error.get("type", "Error"),
                    error.get("message", ""),
                    failed_units=len(failures))
        except BaseException:
            # Abandon the campaign's local workers on any error; on
            # success they stay warm for the next drain and retire
            # on their own once idle.
            self.close()
            raise
        return results

    def _poll(self, paths: QueuePaths,
              outstanding: dict[str, WorkUnit],
              collect: OnResult) -> None:
        last_progress = time.monotonic()
        last_full_scan = 0.0
        while outstanding:
            # Cheap completion signal first: one readdir of done/
            # instead of a read+parse per outstanding result path per
            # cycle (which hammers shared-mount metadata on big
            # grids).  A direct result-file sweep still runs about
            # once a second to catch results whose done marker is
            # delayed (e.g. an executor that died between its result
            # write and its lease rename, later completed by the
            # stale reclaim).
            candidates = {marker.name[:-len(".json")]
                          for marker in paths.done.glob("*.json")}
            now = time.monotonic()
            if now - last_full_scan >= 1.0:
                last_full_scan = now
                candidates = None  # sweep everything this cycle
            progressed = False
            for unit_id in list(outstanding):
                if candidates is not None and \
                        unit_id not in candidates:
                    continue
                unit = outstanding[unit_id]
                payload = load_unit_result(unit.result_path)
                if payload is None or \
                        not result_matches_unit(payload, unit):
                    continue  # not done yet (or a stale leftover a
                    #           worker is about to overwrite)
                if "error" in payload and \
                        self._lease_is_fresh(paths, unit_id):
                    # One executor reported failure while another
                    # still heartbeats a claim on the same unit (a
                    # stalled worker lost its lease and failed late):
                    # wait for the live retry's verdict instead of
                    # aborting the run on the loser's.
                    continue
                del outstanding[unit_id]
                collect(unit, payload)
                progressed = True
            if not outstanding:
                return
            if progressed:
                last_progress = time.monotonic()
                continue
            # No unit finished this pass: drive crash recovery, then
            # make sure somebody is still around to do the work.
            reclaim_stale(paths, self.lease_seconds)
            self._requeue_abandoned(paths, outstanding)
            self._ensure_workers(paths)
            if self.timeout is not None and \
                    time.monotonic() - last_progress > self.timeout:
                if self._live_lease(paths):
                    # A worker is still heartbeating a claimed unit:
                    # slow is not dead.  Timeout only when nothing
                    # completes AND nobody is provably working.
                    last_progress = time.monotonic()
                else:
                    waiting = ", ".join(sorted(outstanding))
                    raise ExecError(
                        f"no unit completed within {self.timeout:.0f}s"
                        f" and no live worker holds a lease; still "
                        f"waiting for: {waiting} (queue "
                        f"{self.queue_dir}; are any workers running?)"
                    )
            time.sleep(self.poll_seconds)

    def _lease_is_fresh(self, paths: QueuePaths, unit_id: str) -> bool:
        """True while some claimant's lease on ``unit_id`` is fresher
        than the staleness horizon — i.e. a worker heartbeats it."""
        now = time.time()
        for lease in _leases_for(paths, unit_id):
            try:
                age = now - lease.stat().st_mtime
            except OSError:
                continue
            if age < self.lease_seconds:
                return True
        return False

    def _live_lease(self, paths: QueuePaths) -> bool:
        """True while any claimed unit's lease is fresher than the
        staleness horizon — i.e. some worker heartbeats it."""
        now = time.time()
        # resim-lint: disable=D104 -- pure existence scan with early
        # exit; no iteration-order-dependent effect escapes.
        for lease in paths.leases.glob("*.json"):
            try:
                age = now - lease.stat().st_mtime
            except OSError:
                continue
            if age < self.lease_seconds:
                return True
        return False

    @staticmethod
    def _requeue_abandoned(paths: QueuePaths,
                           outstanding: dict[str, WorkUnit]) -> None:
        """Re-enqueue units an executor gave up on.

        A ``done/`` marker without a valid result means a worker
        abandoned the unit (e.g. its queue descriptor was unreadable);
        the coordinator still holds the full unit in memory, so it
        rewrites a fresh descriptor instead of waiting forever.
        """
        for unit_id, unit in outstanding.items():
            marker = paths.done / f"{unit_id}.json"
            if not marker.exists():
                continue
            if result_matches_unit(load_unit_result(unit.result_path),
                                   unit):
                continue  # result is there; next pass collects it
            try:
                marker.unlink()
            except OSError:
                continue
            enqueue(paths, unit)

    def _ensure_workers(self, paths: QueuePaths) -> None:
        """Replace local workers that died while unclaimed work sits
        in ``pending/``.

        Only *pending* entries justify a respawn: leased units have a
        live claimant somewhere (and go back to pending via the stale
        reclaim if that claimant died), while an idle-retired local
        worker next to an empty pending directory needs no
        replacement.  The respawn budget bounds the pathological case
        of a unit that hard-crashes every executor it meets.
        """
        if not self.workers:
            return  # externally-managed workers; nothing to do
        if not any(paths.pending.glob("*.json")):
            return
        self._procs = [proc for proc in self._procs
                       if proc.poll() is None]
        while len(self._procs) < self.workers:
            if self._respawns_left <= 0:
                raise ExecError(
                    f"local queue workers keep dying with work "
                    f"outstanding; queue {self.queue_dir} likely has "
                    f"a unit that crashes its executor"
                )
            self._respawns_left -= 1
            self._procs.append(self._spawn_worker())

    def describe(self) -> str:
        return (f"DirectoryQueueBackend({str(self.queue_dir)!r}, "
                f"workers={self.workers})")
